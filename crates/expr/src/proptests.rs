//! Property-based tests for the expression algebra.
//!
//! The central invariant: structural operations on expressions commute with
//! evaluation — `eval(a op b) == eval(a) op eval(b)` at every point of the
//! positive orthant.

use crate::{
    ArenaSignomial, Assignment, CompiledPosynomial, CompiledSignomial, ExprArena, Monomial,
    Posynomial, Signomial, Var,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Reference evaluator matching the pre-arena representation: terms as
/// `(coeff, BTreeMap<Var, f64>)`, evaluated with a `powf` per variable. The
/// differential properties below pin every newer representation (sorted-run
/// monomials, arena terms, compiled CSR rows) to this one.
fn naive_eval(terms: &[(f64, BTreeMap<Var, f64>)], point: &Assignment) -> f64 {
    terms
        .iter()
        .map(|(c, exps)| {
            let mut acc = *c;
            for (&v, &a) in exps {
                acc *= point.get(v).powf(a);
            }
            acc
        })
        .sum()
}

fn naive_terms(s: &Signomial) -> Vec<(f64, BTreeMap<Var, f64>)> {
    s.terms()
        .map(|(c, m)| (c, m.powers().collect::<BTreeMap<_, _>>()))
        .collect()
}

/// Structural agreement up to unit-coefficient ulps: same canonical term
/// keys and effective coefficients (`c * unit.coeff()`, since legacy unit
/// monomials may carry a `1±ulp` coefficient from `scale(1/c)` fixups)
/// within 1e-12 relative.
fn struct_close(a: &Signomial, b: &Signomial) -> bool {
    a.num_terms() == b.num_terms()
        && a.terms().zip(b.terms()).all(|((ca, ma), (cb, mb))| {
            let (ea, eb) = (ca * ma.coeff(), cb * mb.coeff());
            ma.term_key() == mb.term_key() && (ea - eb).abs() <= 1e-12 * (1.0 + eb.abs())
        })
}

const NVARS: usize = 4;

fn arb_point() -> impl Strategy<Value = Assignment> {
    proptest::collection::vec(0.1f64..10.0, NVARS).prop_map(Assignment::from_values)
}

fn arb_monomial() -> impl Strategy<Value = Monomial> {
    (
        0.1f64..10.0,
        proptest::collection::vec((-2i8..=2).prop_map(f64::from), NVARS),
    )
        .prop_map(|(c, exps)| {
            Monomial::new(
                c,
                exps.into_iter()
                    .enumerate()
                    .map(|(i, a)| (Var::from_index(i), a)),
            )
        })
}

fn arb_signomial() -> impl Strategy<Value = Signomial> {
    proptest::collection::vec((arb_monomial(), -5.0f64..5.0), 1..5).prop_map(|terms| {
        let mut s = Signomial::zero();
        for (m, c) in terms {
            s = s + Signomial::from(m).scale(c);
        }
        s
    })
}

fn arb_posynomial() -> impl Strategy<Value = Posynomial> {
    proptest::collection::vec(arb_monomial(), 1..5).prop_map(Posynomial::sum)
}

proptest! {
    #[test]
    fn monomial_mul_commutes_with_eval(a in arb_monomial(), b in arb_monomial(), p in arb_point()) {
        let lhs = (&a * &b).eval(&p);
        let rhs = a.eval(&p) * b.eval(&p);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
    }

    #[test]
    fn monomial_powf_commutes_with_eval(a in arb_monomial(), e in -2.0f64..2.0, p in arb_point()) {
        let lhs = a.powf(e).eval(&p);
        let rhs = a.eval(&p).powf(e);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
    }

    #[test]
    fn signomial_add_commutes_with_eval(a in arb_signomial(), b in arb_signomial(), p in arb_point()) {
        let lhs = (&a + &b).eval(&p);
        let rhs = a.eval(&p) + b.eval(&p);
        prop_assert!((lhs - rhs).abs() <= 1e-8 * (1.0 + rhs.abs()));
    }

    #[test]
    fn signomial_mul_commutes_with_eval(a in arb_signomial(), b in arb_signomial(), p in arb_point()) {
        let lhs = (&a * &b).eval(&p);
        let rhs = a.eval(&p) * b.eval(&p);
        prop_assert!((lhs - rhs).abs() <= 1e-7 * (1.0 + rhs.abs()));
    }

    #[test]
    fn substitution_commutes_with_eval(
        s in arb_signomial(),
        m in arb_monomial(),
        p in arb_point(),
    ) {
        // Substitute v0 := m, then evaluate — must equal evaluating s at the
        // point where v0 is replaced by m's value.
        let v = Var::from_index(0);
        // Strip v0 from the replacement: self-referential substitution would
        // make the comparison point ill-defined.
        let m = Monomial::new(
            m.coeff(),
            m.powers().filter(|&(var, _)| var != v),
        );
        let substituted = s.substitute(v, &m).eval(&p);
        let mut p2 = p.clone();
        p2.set(v, m.eval(&p));
        let direct = s.eval(&p2);
        prop_assert!((substituted - direct).abs() <= 1e-6 * (1.0 + direct.abs()));
    }

    #[test]
    fn posynomials_are_positive(f in arb_posynomial(), p in arb_point()) {
        prop_assert!(f.eval(&p) > 0.0);
    }

    #[test]
    fn upper_bound_dominates_everywhere(s in arb_signomial(), p in arb_point()) {
        if let Some(ub) = s.posynomial_upper_bound() {
            prop_assert!(ub.eval(&p) + 1e-9 >= s.eval(&p));
        } else {
            // No positive terms: the signomial is non-positive everywhere.
            prop_assert!(s.eval(&p) <= 1e-9);
        }
    }

    #[test]
    fn canonical_form_is_stable_under_reordering(
        a in arb_signomial(),
        b in arb_signomial(),
        p in arb_point(),
    ) {
        // Structural canonical forms agree up to floating-point accumulation
        // order, so compare term structure and evaluation.
        let ab = &a + &b;
        let ba = &b + &a;
        let keys = |s: &Signomial| s.terms().map(|(_, m)| m.term_key()).collect::<Vec<_>>();
        prop_assert_eq!(keys(&ab), keys(&ba));
        let (l, r) = (ab.eval(&p), ba.eval(&p));
        prop_assert!((l - r).abs() <= 1e-9 * (1.0 + r.abs()));
    }

    #[test]
    fn sub_then_add_roundtrips(a in arb_signomial(), b in arb_signomial(), p in arb_point()) {
        let roundtrip = &(&a - &b) + &b;
        let lhs = roundtrip.eval(&p);
        let rhs = a.eval(&p);
        prop_assert!((lhs - rhs).abs() <= 1e-7 * (1.0 + rhs.abs()));
    }

    // --- differential properties: every representation agrees with the
    // --- legacy BTreeMap evaluator to 1e-12 relative.

    #[test]
    fn monomial_eval_matches_btreemap_reference(m in arb_monomial(), p in arb_point()) {
        let reference = naive_eval(&naive_terms(&Signomial::from(m.clone())), &p);
        let got = m.eval(&p);
        prop_assert!((got - reference).abs() <= 1e-12 * (1.0 + reference.abs()));
    }

    #[test]
    fn compiled_signomial_matches_btreemap_reference(s in arb_signomial(), p in arb_point()) {
        let reference = naive_eval(&naive_terms(&s), &p);
        let direct = s.eval(&p);
        let compiled = CompiledSignomial::compile(&s).eval(&p);
        prop_assert!((direct - reference).abs() <= 1e-12 * (1.0 + reference.abs()));
        prop_assert!((compiled - reference).abs() <= 1e-12 * (1.0 + reference.abs()));
    }

    #[test]
    fn compiled_posynomial_matches_btreemap_reference(f in arb_posynomial(), p in arb_point()) {
        let s = f.to_signomial();
        let reference = naive_eval(&naive_terms(&s), &p);
        let compiled = CompiledPosynomial::compile(&f).eval(&p);
        prop_assert!((compiled - reference).abs() <= 1e-12 * (1.0 + reference.abs()));
    }

    #[test]
    fn arena_roundtrip_matches_btreemap_reference(s in arb_signomial(), p in arb_point()) {
        let reference = naive_eval(&naive_terms(&s), &p);
        let mut arena = ExprArena::new();
        let imported = ArenaSignomial::from_signomial(&mut arena, &s);
        let arena_eval = imported.eval(&arena, &p);
        prop_assert!((arena_eval - reference).abs() <= 1e-12 * (1.0 + reference.abs()));
        // The exported structural form agrees term by term.
        prop_assert!(struct_close(&imported.to_signomial(&arena), &s));
    }

    #[test]
    fn arena_algebra_matches_legacy_algebra(
        a in arb_signomial(),
        b in arb_signomial(),
        m in arb_monomial(),
        p in arb_point(),
    ) {
        let mut arena = ExprArena::new();
        let aa = ArenaSignomial::from_signomial(&mut arena, &a);
        let ab = ArenaSignomial::from_signomial(&mut arena, &b);

        let sum = aa.add(&ab).to_signomial(&arena);
        let legacy_sum = &a + &b;
        prop_assert!(struct_close(&sum, &legacy_sum));

        let prod = ArenaSignomial::mul(&mut arena, &aa, &ab).to_signomial(&arena);
        let legacy_prod = &a * &b;
        let (l, r) = (prod.eval(&p), legacy_prod.eval(&p));
        prop_assert!((l - r).abs() <= 1e-12 * (1.0 + r.abs()));

        let shifted = aa.mul_monomial(&mut arena, &m).to_signomial(&arena);
        let legacy_shifted = a.mul_monomial(&m);
        let (l, r) = (shifted.eval(&p), legacy_shifted.eval(&p));
        prop_assert!((l - r).abs() <= 1e-12 * (1.0 + r.abs()));
    }
}
