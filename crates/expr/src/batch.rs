//! Batched structural compilation: structural signatures and a shared-CSR
//! SoA exponent store.
//!
//! The permutation sweep solves dozens of GPs that share one sparsity
//! pattern — the same variables appear in the same terms of the same
//! constraints; only the permutation-induced exponent *values* differ. This
//! module provides the two primitives the batched solve path is built on:
//!
//! * [`StructuralSignature`] / [`SignatureBuilder`] — a hash over the
//!   *shape* of a problem (term counts and variable-index patterns,
//!   exponent values excluded) used to group problems into structural
//!   classes. Equal signatures mean "candidate classmates"; the batch
//!   compiler re-verifies exact CSR equality before sharing anything.
//! * [`SoaCsr`] — one symbolic CSR (`row_ptr`/`cols`) shared across up to
//!   [`LANES`] problems, with exponent values stored lane-interleaved so the
//!   fused LogSumExp kernel evaluates all lanes of a class in one pass over
//!   the structure. The inner loops run over fixed-size `[f64; LANES]`
//!   accumulators, which the autovectorizer lowers to SIMD lanes without a
//!   nightly-only `std::simd` dependency.

use crate::{Monomial, Posynomial};

/// Number of problems evaluated per SoA pass. Four f64 lanes fill one AVX2
/// register; wider batches are processed in groups of `LANES`.
pub const LANES: usize = 4;

/// A structural-class key: problems with equal signatures have (very likely)
/// identical sparsity structure and can share one symbolic CSR.
///
/// The signature covers dimensionality, per-constraint term counts, and
/// per-term variable-index patterns. Exponent *values* and coefficients are
/// deliberately excluded — those are exactly what varies across permutation
/// classmates. Collisions are harmless: consumers must re-verify exact
/// `row_ptr`/`cols` equality before sharing structure (see
/// `thistle_gp::BatchProblem`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructuralSignature(u64);

impl StructuralSignature {
    /// The raw 64-bit hash value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Incremental builder for [`StructuralSignature`] (FNV-1a over the
/// structural facts fed in, in order — feeding order is part of the key).
#[derive(Debug, Clone)]
pub struct SignatureBuilder {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl SignatureBuilder {
    /// Starts a fresh signature.
    pub fn new() -> Self {
        SignatureBuilder { state: FNV_OFFSET }
    }

    /// Feeds one 64-bit structural fact.
    pub fn push_u64(&mut self, v: u64) {
        let mut s = self.state;
        for byte in v.to_le_bytes() {
            s ^= byte as u64;
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    /// Feeds the variable-index pattern of one monomial (exponent values and
    /// the coefficient are excluded).
    pub fn push_monomial_pattern(&mut self, m: &Monomial) {
        self.push_u64(m.runs().len() as u64);
        for &(v, _) in m.runs() {
            self.push_u64(v.index() as u64);
        }
    }

    /// Feeds the term-count and per-term variable patterns of a posynomial.
    pub fn push_posynomial_pattern(&mut self, p: &Posynomial) {
        self.push_u64(p.num_terms() as u64);
        for (_, m) in p.terms() {
            self.push_monomial_pattern(m);
        }
    }

    /// Finishes the signature.
    pub fn finish(&self) -> StructuralSignature {
        StructuralSignature(self.state)
    }
}

impl Default for SignatureBuilder {
    fn default() -> Self {
        SignatureBuilder::new()
    }
}

/// One symbolic CSR shared across up to [`LANES`] structurally identical
/// problems, with per-lane values interleaved (`vals[idx * LANES + lane]`).
///
/// Rows are affine forms `offset + Σ vals·y` in log-space — the exponent
/// rows of a LogSumExp transform. The interleaved layout turns the scalar
/// "walk one row, accumulate one dot product" kernel into "walk one row,
/// accumulate [`LANES`] dot products" with unit-stride loads, which is the
/// whole performance story of the batched engine: structure is traversed
/// once per class instead of once per problem.
///
/// Lanes beyond the populated count are broadcast copies of lane 0 so every
/// slot holds finite values and the kernel needs no masking.
#[derive(Debug, Clone)]
pub struct SoaCsr {
    row_ptr: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    width: usize,
    n: usize,
}

impl SoaCsr {
    /// Interleaves `lane_vals` (each of length `nnz = row_ptr.last()`) over
    /// a shared structure. `1..=LANES` lanes are accepted; missing lanes are
    /// padded by broadcasting lane 0. `n` is the column dimension.
    ///
    /// # Panics
    ///
    /// Panics if no lanes are given, more than [`LANES`] are given, or any
    /// lane's value slice disagrees with the structure's nnz count.
    pub fn interleave(row_ptr: &[u32], cols: &[u32], n: usize, lane_vals: &[&[f64]]) -> Self {
        assert!(
            !lane_vals.is_empty() && lane_vals.len() <= LANES,
            "SoaCsr requires 1..={LANES} lanes, got {}",
            lane_vals.len()
        );
        let nnz = *row_ptr.last().expect("row_ptr must be non-empty") as usize;
        assert_eq!(cols.len(), nnz, "cols length must match row_ptr nnz");
        for (lane, vals) in lane_vals.iter().enumerate() {
            assert_eq!(
                vals.len(),
                nnz,
                "lane {lane} has {} values, structure has {nnz}",
                vals.len()
            );
        }
        let mut vals = Vec::with_capacity(nnz * LANES);
        for idx in 0..nnz {
            for lane in 0..LANES {
                let src = if lane < lane_vals.len() { lane } else { 0 };
                vals.push(lane_vals[src][idx]);
            }
        }
        SoaCsr {
            row_ptr: row_ptr.to_vec(),
            cols: cols.to_vec(),
            vals,
            width: lane_vals.len(),
            n,
        }
    }

    /// Builds a store from already lane-interleaved values (`vals.len() ==
    /// nnz * LANES`). Used by derived structures (e.g. slack-extended
    /// phase-I constraints) that transform an existing interleaved store
    /// row by row.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent lengths or `width` outside `1..=LANES`.
    pub fn from_interleaved(
        row_ptr: Vec<u32>,
        cols: Vec<u32>,
        n: usize,
        vals: Vec<f64>,
        width: usize,
    ) -> Self {
        assert!((1..=LANES).contains(&width), "width must be 1..={LANES}");
        let nnz = *row_ptr.last().expect("row_ptr must be non-empty") as usize;
        assert_eq!(cols.len(), nnz, "cols length must match row_ptr nnz");
        assert_eq!(vals.len(), nnz * LANES, "vals must be nnz * LANES");
        SoaCsr {
            row_ptr,
            cols,
            vals,
            width,
            n,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Column dimension (variables per lane).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of populated (non-broadcast) lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The shared row pointer array.
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// The shared column indices.
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// Lane-interleaved values (`nnz * LANES` entries).
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Column indices of row `k`.
    pub fn row_cols(&self, k: usize) -> &[u32] {
        let lo = self.row_ptr[k] as usize;
        let hi = self.row_ptr[k + 1] as usize;
        &self.cols[lo..hi]
    }

    /// Lane-interleaved values of row `k` (`row_len * LANES` entries).
    pub fn row_vals(&self, k: usize) -> &[f64] {
        let lo = self.row_ptr[k] as usize * LANES;
        let hi = self.row_ptr[k + 1] as usize * LANES;
        &self.vals[lo..hi]
    }

    /// Evaluates every row's affine form for all lanes in one structure
    /// pass: `out[k*LANES + l] = offsets[k*LANES + l] + Σ_idx vals[idx*LANES
    /// + l] * ys[cols[idx]*LANES + l]`.
    ///
    /// `ys` is lane-interleaved (`n * LANES`), as are `offsets` and `out`
    /// (`num_rows * LANES`).
    pub fn affine_into(&self, ys: &[f64], offsets: &[f64], out: &mut [f64]) {
        debug_assert_eq!(ys.len(), self.n * LANES);
        debug_assert_eq!(offsets.len(), self.num_rows() * LANES);
        debug_assert_eq!(out.len(), self.num_rows() * LANES);
        for k in 0..self.num_rows() {
            let lo = self.row_ptr[k] as usize;
            let hi = self.row_ptr[k + 1] as usize;
            let mut acc = [0.0f64; LANES];
            for lane in 0..LANES {
                acc[lane] = offsets[k * LANES + lane];
            }
            for idx in lo..hi {
                let c = self.cols[idx] as usize;
                for lane in 0..LANES {
                    acc[lane] += self.vals[idx * LANES + lane] * ys[c * LANES + lane];
                }
            }
            out[k * LANES..(k + 1) * LANES].copy_from_slice(&acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarRegistry;

    #[test]
    fn signature_ignores_exponent_values() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        // Same variable pattern, different exponent values and coefficients.
        let a = Posynomial::sum([
            Monomial::new(2.0, [(x, 1.0), (y, 2.0)]),
            Monomial::new(1.0, [(y, 1.0)]),
        ]);
        let b = Posynomial::sum([
            Monomial::new(7.0, [(x, 3.0), (y, -1.0)]),
            Monomial::new(0.5, [(y, 4.0)]),
        ]);
        let sig = |p: &Posynomial| {
            let mut sb = SignatureBuilder::new();
            sb.push_posynomial_pattern(p);
            sb.finish()
        };
        assert_eq!(sig(&a), sig(&b));
        // Different pattern (extra variable in term 2) must differ.
        let c = Posynomial::sum([
            Monomial::new(2.0, [(x, 1.0), (y, 2.0)]),
            Monomial::new(1.0, [(x, 1.0), (y, 1.0)]),
        ]);
        assert_ne!(sig(&a), sig(&c));
    }

    #[test]
    fn signature_is_order_sensitive() {
        let mut sa = SignatureBuilder::new();
        sa.push_u64(1);
        sa.push_u64(2);
        let mut sb = SignatureBuilder::new();
        sb.push_u64(2);
        sb.push_u64(1);
        assert_ne!(sa.finish(), sb.finish());
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // `0 * LANES + lane` keeps the element*LANES+lane indexing visible
    fn interleave_broadcasts_missing_lanes() {
        // Two rows over 3 columns: row 0 = {0: a, 2: b}, row 1 = {1: c}.
        let row_ptr = [0u32, 2, 3];
        let cols = [0u32, 2, 1];
        let lane0 = [1.0, 2.0, 3.0];
        let lane1 = [10.0, 20.0, 30.0];
        let csr = SoaCsr::interleave(&row_ptr, &cols, 3, &[&lane0, &lane1]);
        assert_eq!(csr.width(), 2);
        assert_eq!(csr.num_rows(), 2);
        // Lanes 2 and 3 are broadcast copies of lane 0.
        assert_eq!(csr.row_vals(0)[0 * LANES + 2], 1.0);
        assert_eq!(csr.row_vals(0)[1 * LANES + 3], 2.0);
        assert_eq!(csr.row_vals(1)[0 * LANES + 1], 30.0);
    }

    #[test]
    fn affine_matches_scalar_reference() {
        let row_ptr = [0u32, 2, 3, 5];
        let cols = [0u32, 1, 2, 0, 2];
        let lanes: Vec<Vec<f64>> = (0..LANES)
            .map(|l| (0..5).map(|i| (l * 5 + i) as f64 * 0.5 - 2.0).collect())
            .collect();
        let lane_refs: Vec<&[f64]> = lanes.iter().map(|v| v.as_slice()).collect();
        let csr = SoaCsr::interleave(&row_ptr, &cols, 3, &lane_refs);
        // Per-lane y vectors, interleaved.
        let ys_per_lane: Vec<Vec<f64>> = (0..LANES)
            .map(|l| (0..3).map(|i| (i + 1) as f64 + l as f64 * 0.1).collect())
            .collect();
        let mut ys = vec![0.0; 3 * LANES];
        for (l, y) in ys_per_lane.iter().enumerate() {
            for (i, &v) in y.iter().enumerate() {
                ys[i * LANES + l] = v;
            }
        }
        let offsets: Vec<f64> = (0..3 * LANES).map(|i| i as f64 * 0.01).collect();
        let mut out = vec![0.0; 3 * LANES];
        csr.affine_into(&ys, &offsets, &mut out);
        for k in 0..3 {
            for l in 0..LANES {
                let lo = row_ptr[k] as usize;
                let hi = row_ptr[k + 1] as usize;
                let mut expect = offsets[k * LANES + l];
                for idx in lo..hi {
                    expect += lanes[l][idx] * ys_per_lane[l][cols[idx] as usize];
                }
                let got = out[k * LANES + l];
                assert!(
                    (got - expect).abs() < 1e-12,
                    "row {k} lane {l}: {got} vs {expect}"
                );
            }
        }
    }
}
