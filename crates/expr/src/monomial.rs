//! Monomials: positive coefficient times a product of variable powers.

use crate::{Assignment, Var, CANON_EPS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::{Div, Mul};

/// A monomial `c * x1^a1 * ... * xn^an` with coefficient `c > 0` and real
/// exponents, the atom of geometric programming.
///
/// Monomials are closed under multiplication, division, and real powers.
///
/// # Examples
///
/// ```
/// use thistle_expr::{Monomial, VarRegistry};
/// let mut reg = VarRegistry::new();
/// let x = reg.var("x");
/// let y = reg.var("y");
/// let m = Monomial::var(x) * Monomial::var(y).powf(2.0) * 3.0; // 3*x*y^2
/// let mut point = reg.assignment();
/// point.set(x, 2.0);
/// point.set(y, 4.0);
/// assert_eq!(m.eval(&point), 3.0 * 2.0 * 16.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Monomial {
    coeff: f64,
    exponents: BTreeMap<Var, f64>,
}

impl Monomial {
    /// The constant monomial `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not finite and strictly positive.
    pub fn constant(c: f64) -> Self {
        assert!(
            c.is_finite() && c > 0.0,
            "monomial coefficients must be finite and positive, got {c}"
        );
        Monomial {
            coeff: c,
            exponents: BTreeMap::new(),
        }
    }

    /// The monomial `x` for a single variable.
    pub fn var(v: Var) -> Self {
        let mut exponents = BTreeMap::new();
        exponents.insert(v, 1.0);
        Monomial {
            coeff: 1.0,
            exponents,
        }
    }

    /// Builds `c * prod_i v_i^{a_i}` directly.
    ///
    /// Duplicate variables accumulate their exponents; exponents that cancel
    /// to ~zero are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not finite and strictly positive.
    pub fn new(c: f64, powers: impl IntoIterator<Item = (Var, f64)>) -> Self {
        let mut m = Monomial::constant(c);
        for (v, a) in powers {
            *m.exponents.entry(v).or_insert(0.0) += a;
        }
        m.canonicalize();
        m
    }

    /// The multiplicative identity `1`.
    pub fn one() -> Self {
        Monomial::constant(1.0)
    }

    /// The coefficient `c`.
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// The exponent of `v` (zero if absent).
    pub fn exponent(&self, v: Var) -> f64 {
        self.exponents.get(&v).copied().unwrap_or(0.0)
    }

    /// Iterates over `(variable, exponent)` pairs in variable order.
    pub fn powers(&self) -> impl Iterator<Item = (Var, f64)> + '_ {
        self.exponents.iter().map(|(&v, &a)| (v, a))
    }

    /// Whether this monomial mentions `v` with a nonzero exponent.
    pub fn contains(&self, v: Var) -> bool {
        self.exponents.contains_key(&v)
    }

    /// Whether this is a pure constant (no variables).
    pub fn is_constant(&self) -> bool {
        self.exponents.is_empty()
    }

    /// Evaluates the monomial at a point.
    pub fn eval(&self, point: &Assignment) -> f64 {
        let mut acc = self.coeff;
        for (&v, &a) in &self.exponents {
            acc *= point.get(v).powf(a);
        }
        acc
    }

    /// Raises the monomial to a real power.
    ///
    /// Monomials are closed under arbitrary real powers because the
    /// coefficient is positive.
    pub fn powf(&self, p: f64) -> Self {
        let mut out = Monomial::constant(self.coeff.powf(p));
        for (&v, &a) in &self.exponents {
            out.exponents.insert(v, a * p);
        }
        out.canonicalize();
        out
    }

    /// The reciprocal `1/m`.
    pub fn recip(&self) -> Self {
        self.powf(-1.0)
    }

    /// Multiplies the coefficient by `c`.
    ///
    /// # Panics
    ///
    /// Panics if the resulting coefficient would not be positive and finite.
    pub fn scale(&self, c: f64) -> Self {
        let mut out = self.clone();
        out.coeff *= c;
        assert!(
            out.coeff.is_finite() && out.coeff > 0.0,
            "scaling produced a non-positive coefficient"
        );
        out
    }

    /// Substitutes `replacement` for every occurrence of `v`: if the exponent
    /// of `v` is `a`, the result is multiplied by `replacement^a` with `v`
    /// removed.
    ///
    /// This is the primitive behind Algorithm 1's
    /// `replace(expr, c_lower, c_upper * c_lower)` rewriting step.
    pub fn substitute(&self, v: Var, replacement: &Monomial) -> Self {
        match self.exponents.get(&v) {
            None => self.clone(),
            Some(&a) => {
                let mut base = self.clone();
                base.exponents.remove(&v);
                &base * &replacement.powf(a)
            }
        }
    }

    /// Key identifying the variable part (ignoring the coefficient); two
    /// monomials with equal keys are like terms.
    pub(crate) fn term_key(&self) -> Vec<(Var, i64)> {
        // Exponents in our models are small rationals; quantize to 2^-32 so
        // that like terms produced by identical algebra compare equal.
        self.exponents
            .iter()
            .map(|(&v, &a)| (v, (a * 4294967296.0).round() as i64))
            .collect()
    }

    fn canonicalize(&mut self) {
        self.exponents.retain(|_, a| a.abs() > CANON_EPS);
    }
}

impl Default for Monomial {
    fn default() -> Self {
        Monomial::one()
    }
}

impl Mul for &Monomial {
    type Output = Monomial;
    fn mul(self, rhs: &Monomial) -> Monomial {
        let mut out = self.clone();
        out.coeff *= rhs.coeff;
        for (&v, &a) in &rhs.exponents {
            *out.exponents.entry(v).or_insert(0.0) += a;
        }
        out.canonicalize();
        out
    }
}

impl Mul for Monomial {
    type Output = Monomial;
    fn mul(self, rhs: Monomial) -> Monomial {
        &self * &rhs
    }
}

impl Mul<f64> for Monomial {
    type Output = Monomial;
    fn mul(self, rhs: f64) -> Monomial {
        self.scale(rhs)
    }
}

impl Div for &Monomial {
    type Output = Monomial;
    // Division delegates to multiplication by the reciprocal on purpose.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &Monomial) -> Monomial {
        self * &rhs.recip()
    }
}

impl Div for Monomial {
    type Output = Monomial;
    fn div(self, rhs: Monomial) -> Monomial {
        &self / &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarRegistry;

    fn xy() -> (VarRegistry, Var, Var) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        (reg, x, y)
    }

    #[test]
    fn multiplication_adds_exponents() {
        let (_, x, y) = xy();
        let m = Monomial::new(2.0, [(x, 1.0), (y, 2.0)]);
        let n = Monomial::new(3.0, [(x, -1.0), (y, 1.0)]);
        let p = &m * &n;
        assert_eq!(p.coeff(), 6.0);
        assert_eq!(p.exponent(x), 0.0);
        assert!(!p.contains(x), "cancelled exponents must be dropped");
        assert_eq!(p.exponent(y), 3.0);
    }

    #[test]
    fn division_is_mul_by_reciprocal() {
        let (reg, x, y) = xy();
        let m = Monomial::new(6.0, [(x, 2.0)]);
        let n = Monomial::new(2.0, [(x, 1.0), (y, 1.0)]);
        let q = &m / &n;
        let mut p = reg.assignment();
        p.set(x, 3.0);
        p.set(y, 5.0);
        let expected = m.eval(&p) / n.eval(&p);
        assert!((q.eval(&p) - expected).abs() < 1e-12);
    }

    #[test]
    fn powf_handles_fractional_powers() {
        let (reg, x, _) = xy();
        let m = Monomial::new(4.0, [(x, 2.0)]);
        let r = m.powf(0.5);
        let mut p = reg.assignment();
        p.set(x, 9.0);
        assert!((r.eval(&p) - 2.0 * 9.0).abs() < 1e-12);
    }

    #[test]
    fn substitute_replaces_and_respects_power() {
        let (reg, x, y) = xy();
        // m = x^2 * y; substitute x -> 3y  => 9 y^2 * y = 9 y^3
        let m = Monomial::new(1.0, [(x, 2.0), (y, 1.0)]);
        let s = m.substitute(x, &Monomial::new(3.0, [(y, 1.0)]));
        assert!(!s.contains(x));
        assert_eq!(s.coeff(), 9.0);
        assert_eq!(s.exponent(y), 3.0);
        let mut p = reg.assignment();
        p.set(y, 2.0);
        assert_eq!(s.eval(&p), 9.0 * 8.0);
    }

    #[test]
    fn substitute_absent_variable_is_identity() {
        let (_, x, y) = xy();
        let m = Monomial::new(5.0, [(y, 1.0)]);
        assert_eq!(m.substitute(x, &Monomial::constant(7.0)), m);
    }

    #[test]
    fn like_terms_share_keys() {
        let (_, x, y) = xy();
        let a = Monomial::new(2.0, [(x, 1.0), (y, 0.5)]);
        let b = Monomial::new(9.0, [(y, 0.5), (x, 1.0)]);
        assert_eq!(a.term_key(), b.term_key());
        let c = Monomial::new(9.0, [(y, 0.5)]);
        assert_ne!(a.term_key(), c.term_key());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_negative_coefficient() {
        Monomial::constant(-1.0);
    }
}
