//! Monomials: positive coefficient times a product of variable powers.

use crate::{Assignment, Var, CANON_EPS};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::ops::{Div, Mul};

/// Quantization factor for exponent comparison: exponents in our models are
/// small rationals, so rounding to multiples of `2^-32` makes like terms
/// produced by identical algebra compare equal.
pub(crate) const KEY_SCALE: f64 = 4294967296.0;

/// Quantizes one exponent for like-term comparison.
#[inline]
pub(crate) fn quantize(a: f64) -> i64 {
    (a * KEY_SCALE).round() as i64
}

/// A monomial `c * x1^a1 * ... * xn^an` with coefficient `c > 0` and real
/// exponents, the atom of geometric programming.
///
/// Monomials are closed under multiplication, division, and real powers.
/// The exponents are stored as a single sorted `(Var, f64)` run — the same
/// layout the arena IR ([`crate::ExprArena`]) interns into its shared slab —
/// so iteration is a cache-friendly slice walk rather than a pointer chase.
///
/// # Examples
///
/// ```
/// use thistle_expr::{Monomial, VarRegistry};
/// let mut reg = VarRegistry::new();
/// let x = reg.var("x");
/// let y = reg.var("y");
/// let m = Monomial::var(x) * Monomial::var(y).powf(2.0) * 3.0; // 3*x*y^2
/// let mut point = reg.assignment();
/// point.set(x, 2.0);
/// point.set(y, 4.0);
/// assert_eq!(m.eval(&point), 3.0 * 2.0 * 16.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Monomial {
    coeff: f64,
    /// Sorted by `Var`, no duplicates, no ~zero exponents.
    exponents: Vec<(Var, f64)>,
}

impl Monomial {
    /// The constant monomial `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not finite and strictly positive.
    pub fn constant(c: f64) -> Self {
        assert!(
            c.is_finite() && c > 0.0,
            "monomial coefficients must be finite and positive, got {c}"
        );
        Monomial {
            coeff: c,
            exponents: Vec::new(),
        }
    }

    /// The monomial `x` for a single variable.
    pub fn var(v: Var) -> Self {
        Monomial {
            coeff: 1.0,
            exponents: vec![(v, 1.0)],
        }
    }

    /// Builds `c * prod_i v_i^{a_i}` directly.
    ///
    /// Duplicate variables accumulate their exponents; exponents that cancel
    /// to ~zero are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not finite and strictly positive.
    pub fn new(c: f64, powers: impl IntoIterator<Item = (Var, f64)>) -> Self {
        let mut m = Monomial::constant(c);
        m.exponents.extend(powers);
        m.exponents.sort_by_key(|&(v, _)| v);
        coalesce_sorted(&mut m.exponents);
        m
    }

    /// The multiplicative identity `1`.
    pub fn one() -> Self {
        Monomial::constant(1.0)
    }

    /// The coefficient `c`.
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// The exponent of `v` (zero if absent).
    pub fn exponent(&self, v: Var) -> f64 {
        match self.exponents.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => self.exponents[i].1,
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(variable, exponent)` pairs in variable order.
    pub fn powers(&self) -> impl Iterator<Item = (Var, f64)> + '_ {
        self.exponents.iter().copied()
    }

    /// The sorted `(variable, exponent)` run backing this monomial.
    pub fn runs(&self) -> &[(Var, f64)] {
        &self.exponents
    }

    /// Whether this monomial mentions `v` with a nonzero exponent.
    pub fn contains(&self, v: Var) -> bool {
        self.exponents.binary_search_by_key(&v, |&(w, _)| w).is_ok()
    }

    /// Whether this is a pure constant (no variables).
    pub fn is_constant(&self) -> bool {
        self.exponents.is_empty()
    }

    /// Evaluates the monomial at a point.
    pub fn eval(&self, point: &Assignment) -> f64 {
        let mut acc = self.coeff;
        for &(v, a) in &self.exponents {
            acc *= point.get(v).powf(a);
        }
        acc
    }

    /// Raises the monomial to a real power.
    ///
    /// Monomials are closed under arbitrary real powers because the
    /// coefficient is positive.
    pub fn powf(&self, p: f64) -> Self {
        let mut out = Monomial::constant(self.coeff.powf(p));
        out.exponents
            .extend(self.exponents.iter().map(|&(v, a)| (v, a * p)));
        out.exponents.retain(|&(_, a)| a.abs() > CANON_EPS);
        out
    }

    /// The reciprocal `1/m`.
    pub fn recip(&self) -> Self {
        self.powf(-1.0)
    }

    /// Multiplies the coefficient by `c`.
    ///
    /// # Panics
    ///
    /// Panics if the resulting coefficient would not be positive and finite.
    pub fn scale(&self, c: f64) -> Self {
        let mut out = self.clone();
        out.coeff *= c;
        assert!(
            out.coeff.is_finite() && out.coeff > 0.0,
            "scaling produced a non-positive coefficient"
        );
        out
    }

    /// Substitutes `replacement` for every occurrence of `v`: if the exponent
    /// of `v` is `a`, the result is multiplied by `replacement^a` with `v`
    /// removed.
    ///
    /// This is the primitive behind Algorithm 1's
    /// `replace(expr, c_lower, c_upper * c_lower)` rewriting step.
    pub fn substitute(&self, v: Var, replacement: &Monomial) -> Self {
        match self.exponents.binary_search_by_key(&v, |&(w, _)| w) {
            Err(_) => self.clone(),
            Ok(i) => {
                let a = self.exponents[i].1;
                let mut base = self.clone();
                base.exponents.remove(i);
                &base * &replacement.powf(a)
            }
        }
    }

    /// Key identifying the variable part (ignoring the coefficient); two
    /// monomials with equal keys are like terms. Production code uses the
    /// allocation-free [`Monomial::key_cmp`]; this materialized form remains
    /// for tests that compare or collect keys.
    #[cfg(test)]
    pub(crate) fn term_key(&self) -> Vec<(Var, i64)> {
        self.exponents
            .iter()
            .map(|&(v, a)| (v, quantize(a)))
            .collect()
    }

    /// Allocation-free ordering on quantized variable parts; equal order
    /// means like terms. This is the comparison [`crate::Signomial`] sorts
    /// by during canonicalization.
    pub(crate) fn key_cmp(&self, other: &Monomial) -> Ordering {
        let mut lhs = self.exponents.iter();
        let mut rhs = other.exponents.iter();
        loop {
            match (lhs.next(), rhs.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(&(va, aa)), Some(&(vb, ab))) => {
                    let ord = va.cmp(&vb).then_with(|| quantize(aa).cmp(&quantize(ab)));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
            }
        }
    }
}

/// Merges duplicate variables in a sorted run (summing exponents in
/// encounter order) and drops ~zero exponents.
fn coalesce_sorted(run: &mut Vec<(Var, f64)>) {
    let mut write = 0usize;
    for read in 0..run.len() {
        if write > 0 && run[write - 1].0 == run[read].0 {
            run[write - 1].1 += run[read].1;
        } else {
            run[write] = run[read];
            write += 1;
        }
    }
    run.truncate(write);
    run.retain(|&(_, a)| a.abs() > CANON_EPS);
}

impl Default for Monomial {
    fn default() -> Self {
        Monomial::one()
    }
}

impl Mul for &Monomial {
    type Output = Monomial;
    fn mul(self, rhs: &Monomial) -> Monomial {
        let mut exponents = Vec::with_capacity(self.exponents.len() + rhs.exponents.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.exponents.len() && j < rhs.exponents.len() {
            let (va, aa) = self.exponents[i];
            let (vb, ab) = rhs.exponents[j];
            match va.cmp(&vb) {
                Ordering::Less => {
                    exponents.push((va, aa));
                    i += 1;
                }
                Ordering::Greater => {
                    exponents.push((vb, ab));
                    j += 1;
                }
                Ordering::Equal => {
                    let sum = aa + ab;
                    if sum.abs() > CANON_EPS {
                        exponents.push((va, sum));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        exponents.extend_from_slice(&self.exponents[i..]);
        exponents.extend_from_slice(&rhs.exponents[j..]);
        Monomial {
            coeff: self.coeff * rhs.coeff,
            exponents,
        }
    }
}

impl Mul for Monomial {
    type Output = Monomial;
    fn mul(self, rhs: Monomial) -> Monomial {
        &self * &rhs
    }
}

impl Mul<f64> for Monomial {
    type Output = Monomial;
    fn mul(self, rhs: f64) -> Monomial {
        self.scale(rhs)
    }
}

impl Div for &Monomial {
    type Output = Monomial;
    // Division delegates to multiplication by the reciprocal on purpose.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &Monomial) -> Monomial {
        self * &rhs.recip()
    }
}

impl Div for Monomial {
    type Output = Monomial;
    fn div(self, rhs: Monomial) -> Monomial {
        &self / &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarRegistry;

    fn xy() -> (VarRegistry, Var, Var) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        (reg, x, y)
    }

    #[test]
    fn multiplication_adds_exponents() {
        let (_, x, y) = xy();
        let m = Monomial::new(2.0, [(x, 1.0), (y, 2.0)]);
        let n = Monomial::new(3.0, [(x, -1.0), (y, 1.0)]);
        let p = &m * &n;
        assert_eq!(p.coeff(), 6.0);
        assert_eq!(p.exponent(x), 0.0);
        assert!(!p.contains(x), "cancelled exponents must be dropped");
        assert_eq!(p.exponent(y), 3.0);
    }

    #[test]
    fn division_is_mul_by_reciprocal() {
        let (reg, x, y) = xy();
        let m = Monomial::new(6.0, [(x, 2.0)]);
        let n = Monomial::new(2.0, [(x, 1.0), (y, 1.0)]);
        let q = &m / &n;
        let mut p = reg.assignment();
        p.set(x, 3.0);
        p.set(y, 5.0);
        let expected = m.eval(&p) / n.eval(&p);
        assert!((q.eval(&p) - expected).abs() < 1e-12);
    }

    #[test]
    fn powf_handles_fractional_powers() {
        let (reg, x, _) = xy();
        let m = Monomial::new(4.0, [(x, 2.0)]);
        let r = m.powf(0.5);
        let mut p = reg.assignment();
        p.set(x, 9.0);
        assert!((r.eval(&p) - 2.0 * 9.0).abs() < 1e-12);
    }

    #[test]
    fn substitute_replaces_and_respects_power() {
        let (reg, x, y) = xy();
        // m = x^2 * y; substitute x -> 3y  => 9 y^2 * y = 9 y^3
        let m = Monomial::new(1.0, [(x, 2.0), (y, 1.0)]);
        let s = m.substitute(x, &Monomial::new(3.0, [(y, 1.0)]));
        assert!(!s.contains(x));
        assert_eq!(s.coeff(), 9.0);
        assert_eq!(s.exponent(y), 3.0);
        let mut p = reg.assignment();
        p.set(y, 2.0);
        assert_eq!(s.eval(&p), 9.0 * 8.0);
    }

    #[test]
    fn substitute_absent_variable_is_identity() {
        let (_, x, y) = xy();
        let m = Monomial::new(5.0, [(y, 1.0)]);
        assert_eq!(m.substitute(x, &Monomial::constant(7.0)), m);
    }

    #[test]
    fn like_terms_share_keys() {
        let (_, x, y) = xy();
        let a = Monomial::new(2.0, [(x, 1.0), (y, 0.5)]);
        let b = Monomial::new(9.0, [(y, 0.5), (x, 1.0)]);
        assert_eq!(a.term_key(), b.term_key());
        assert_eq!(a.key_cmp(&b), Ordering::Equal);
        let c = Monomial::new(9.0, [(y, 0.5)]);
        assert_ne!(a.term_key(), c.term_key());
        assert_ne!(a.key_cmp(&c), Ordering::Equal);
    }

    #[test]
    fn runs_are_sorted_and_deduped() {
        let (_, x, y) = xy();
        let m = Monomial::new(2.0, [(y, 1.0), (x, 2.0), (y, 0.5)]);
        assert_eq!(m.runs(), &[(x, 2.0), (y, 1.5)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_negative_coefficient() {
        Monomial::constant(-1.0);
    }
}
