//! Arena-backed, hash-consed expression IR.
//!
//! The Algorithm-1 expression builders (footprints, per-level data volumes)
//! repeatedly construct the same sub-monomials: halo terms share tile-factor
//! products, every tensor's traffic shares the outer trip-count prefix, and
//! the 8-level loop nest multiplies the same handful of factors over and
//! over. The [`ExprArena`] makes that sharing explicit: each distinct
//! variable part (a sorted `(Var, f64)` exponent run) is interned **once**
//! into a shared slab and addressed by a copyable [`UnitId`], so building a
//! repeated subterm is a hash lookup rather than an allocation, and unit
//! products are memoized across the whole build.
//!
//! An [`ArenaSignomial`] is then just `Vec<(f64, UnitId)>` — term arithmetic
//! moves `u32`s around instead of cloning maps. Conversion to and from the
//! standalone [`Signomial`] type is exact: the arena mirrors the legacy
//! operations' floating-point arithmetic (same merge order, same coefficient
//! products), so an expression built through the arena and exported equals
//! the one built directly term by term.

use crate::monomial::quantize;
use crate::{Assignment, Monomial, Signomial, Var, CANON_EPS};
use std::cell::Cell;
use std::collections::HashMap;

/// Hash-consing and memo-table counters for one [`ExprArena`] (or, via
/// [`thread_arena_stats`], for every arena a thread has used).
///
/// `intern_*` counts structural interning: a hit means an identical unit
/// already existed and no allocation happened. `mul_*` and `subst_*` count
/// the product and substitution memo tables. All counters are monotone, so
/// deltas between two snapshots of the cumulative thread counters bracket a
/// region of work (e.g. one GP generation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Intern requests answered by an existing unit.
    pub intern_hits: u64,
    /// Intern requests that allocated a new unit.
    pub intern_misses: u64,
    /// Unit products answered by the memo table.
    pub mul_hits: u64,
    /// Unit products computed and memoized.
    pub mul_misses: u64,
    /// Substitutions answered by the memo table.
    pub subst_hits: u64,
    /// Substitutions computed and memoized.
    pub subst_misses: u64,
}

impl ArenaStats {
    /// Fraction of intern requests that hit an existing unit (0 when none).
    pub fn intern_hit_rate(&self) -> f64 {
        let total = self.intern_hits + self.intern_misses;
        if total == 0 {
            0.0
        } else {
            self.intern_hits as f64 / total as f64
        }
    }

    /// Total counted arena operations.
    pub fn total_ops(&self) -> u64 {
        self.intern_hits
            + self.intern_misses
            + self.mul_hits
            + self.mul_misses
            + self.subst_hits
            + self.subst_misses
    }

    /// Counter-wise difference `self - mark` (saturating), for bracketing a
    /// region of work between two [`thread_arena_stats`] snapshots.
    pub fn delta_since(&self, mark: &ArenaStats) -> ArenaStats {
        ArenaStats {
            intern_hits: self.intern_hits.saturating_sub(mark.intern_hits),
            intern_misses: self.intern_misses.saturating_sub(mark.intern_misses),
            mul_hits: self.mul_hits.saturating_sub(mark.mul_hits),
            mul_misses: self.mul_misses.saturating_sub(mark.mul_misses),
            subst_hits: self.subst_hits.saturating_sub(mark.subst_hits),
            subst_misses: self.subst_misses.saturating_sub(mark.subst_misses),
        }
    }

    /// Counter-wise sum (rollup aggregation).
    pub fn merge(&mut self, other: &ArenaStats) {
        self.intern_hits += other.intern_hits;
        self.intern_misses += other.intern_misses;
        self.mul_hits += other.mul_hits;
        self.mul_misses += other.mul_misses;
        self.subst_hits += other.subst_hits;
        self.subst_misses += other.subst_misses;
    }
}

thread_local! {
    /// Cumulative arena counters across every arena this thread has used.
    /// Model builds create several short-lived arenas per GP generation;
    /// the cumulative counters let a caller bracket the whole generation
    /// with two snapshots regardless of how many arenas it touched.
    static THREAD_STATS: Cell<ArenaStats> = const {
        Cell::new(ArenaStats {
            intern_hits: 0,
            intern_misses: 0,
            mul_hits: 0,
            mul_misses: 0,
            subst_hits: 0,
            subst_misses: 0,
        })
    };
}

/// Cumulative [`ArenaStats`] over every arena used on the current thread.
/// Monotone; take a snapshot before and after a region of work and use
/// [`ArenaStats::delta_since`] to attribute counters to that region.
pub fn thread_arena_stats() -> ArenaStats {
    THREAD_STATS.with(Cell::get)
}

fn bump_thread(apply: impl FnOnce(&mut ArenaStats)) {
    THREAD_STATS.with(|cell| {
        let mut stats = cell.get();
        apply(&mut stats);
        cell.set(stats);
    });
}

/// Handle to one interned variable part (a unit monomial, coefficient 1) in
/// an [`ExprArena`]. Only meaningful together with the arena that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(u32);

impl UnitId {
    /// The dense index of this unit in its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Hash-consing arena for unit monomials.
///
/// Exponent runs live in one shared slab (`runs`); each unit is a `(start,
/// len)` span into it. Structural interning quantizes exponents to multiples
/// of `2^-32` (the same key the legacy canonicalization sorts by), so two
/// units produced by identical algebra always collapse to one id.
///
/// # Examples
///
/// ```
/// use thistle_expr::{ExprArena, VarRegistry};
/// let mut reg = VarRegistry::new();
/// let (x, y) = (reg.var("x"), reg.var("y"));
/// let mut arena = ExprArena::new();
/// let xy = arena.mul_units(arena.one(), arena.one());
/// assert_eq!(xy, arena.one()); // 1*1 interns back to 1
/// let ux = arena.var(x);
/// let uy = arena.var(y);
/// let a = arena.mul_units(ux, uy);
/// let b = arena.mul_units(uy, ux);
/// assert_eq!(a, b); // x*y and y*x are the same unit
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExprArena {
    /// Shared slab of sorted `(Var, exponent)` pairs.
    runs: Vec<(Var, f64)>,
    /// Per-unit `(start, len)` spans into `runs`.
    spans: Vec<(u32, u32)>,
    /// Quantized-run hash → units with that hash (rarely more than one).
    index: HashMap<u64, Vec<UnitId>>,
    /// Memoized unit products, keyed by unordered id pair.
    mul_cache: HashMap<(UnitId, UnitId), UnitId>,
    /// Memoized substitutions `(unit, var, replacement unit) -> unit`.
    subst_cache: HashMap<(UnitId, Var, UnitId), UnitId>,
    /// Hash-consing and memo-table counters for this arena.
    stats: ArenaStats,
}

impl ExprArena {
    /// An empty arena (the unit `1` is pre-interned as id 0).
    pub fn new() -> Self {
        let mut arena = ExprArena {
            runs: Vec::new(),
            spans: Vec::new(),
            index: HashMap::new(),
            mul_cache: HashMap::new(),
            subst_cache: HashMap::new(),
            stats: ArenaStats::default(),
        };
        let one = arena.intern_sorted(&[]);
        debug_assert_eq!(one.0, 0);
        arena
    }

    /// The unit monomial `1`.
    pub fn one(&self) -> UnitId {
        UnitId(0)
    }

    /// Interns the single-variable unit `v`.
    pub fn var(&mut self, v: Var) -> UnitId {
        self.intern_sorted(&[(v, 1.0)])
    }

    /// The sorted exponent run of a unit.
    pub fn powers(&self, u: UnitId) -> &[(Var, f64)] {
        let (start, len) = self.spans[u.index()];
        &self.runs[start as usize..(start + len) as usize]
    }

    /// The exponent of `v` in unit `u` (zero if absent).
    pub fn exponent(&self, u: UnitId, v: Var) -> f64 {
        match self.powers(u).binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => self.powers(u)[i].1,
            Err(_) => 0.0,
        }
    }

    /// Number of distinct interned units.
    pub fn num_units(&self) -> usize {
        self.spans.len()
    }

    /// Total slab entries across all units (the shared-storage footprint).
    pub fn slab_len(&self) -> usize {
        self.runs.len()
    }

    /// Number of intern requests that hit an already-present unit.
    pub fn intern_hits(&self) -> u64 {
        self.stats.intern_hits
    }

    /// Hash-consing and memo-table counters accumulated by this arena.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Interns the unit (variable part) of a standalone monomial.
    pub fn intern_monomial_unit(&mut self, m: &Monomial) -> UnitId {
        self.intern_sorted(m.runs())
    }

    /// Evaluates a unit at a point (the product of variable powers, no
    /// coefficient).
    pub fn eval_unit(&self, u: UnitId, point: &Assignment) -> f64 {
        let mut acc = 1.0;
        for &(v, a) in self.powers(u) {
            acc *= point.get(v).powf(a);
        }
        acc
    }

    /// The product of two units (exponents added, ~zero sums dropped).
    /// Memoized: repeated products across a model build are free.
    pub fn mul_units(&mut self, a: UnitId, b: UnitId) -> UnitId {
        if a == self.one() {
            return b;
        }
        if b == self.one() {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&u) = self.mul_cache.get(&key) {
            self.stats.mul_hits += 1;
            bump_thread(|s| s.mul_hits += 1);
            return u;
        }
        self.stats.mul_misses += 1;
        bump_thread(|s| s.mul_misses += 1);
        let mut run = Vec::with_capacity(self.powers(a).len() + self.powers(b).len());
        {
            let (pa, pb) = (self.powers(a), self.powers(b));
            let (mut i, mut j) = (0usize, 0usize);
            while i < pa.len() && j < pb.len() {
                match pa[i].0.cmp(&pb[j].0) {
                    std::cmp::Ordering::Less => {
                        run.push(pa[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        run.push(pb[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        let sum = pa[i].1 + pb[j].1;
                        if sum.abs() > CANON_EPS {
                            run.push((pa[i].0, sum));
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
            run.extend_from_slice(&pa[i..]);
            run.extend_from_slice(&pb[j..]);
        }
        let u = self.intern_sorted(&run);
        self.mul_cache.insert(key, u);
        u
    }

    /// Raises a unit to a real power (each exponent multiplied by `p`).
    pub fn pow_unit(&mut self, u: UnitId, p: f64) -> UnitId {
        let run: Vec<(Var, f64)> = self
            .powers(u)
            .iter()
            .map(|&(v, a)| (v, a * p))
            .filter(|&(_, a)| a.abs() > CANON_EPS)
            .collect();
        self.intern_sorted(&run)
    }

    /// Substitutes `replacement` (a unit) for `v` in `u`: if `v` has exponent
    /// `a`, returns `(a, (u / v^a) * replacement^a)`; `None` when `v` is
    /// absent. The caller owns any replacement coefficient (`c^a`).
    pub fn substitute_unit(
        &mut self,
        u: UnitId,
        v: Var,
        replacement: UnitId,
    ) -> Option<(f64, UnitId)> {
        let a = match self.powers(u).binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => self.powers(u)[i].1,
            Err(_) => return None,
        };
        let key = (u, v, replacement);
        if let Some(&cached) = self.subst_cache.get(&key) {
            self.stats.subst_hits += 1;
            bump_thread(|s| s.subst_hits += 1);
            return Some((a, cached));
        }
        self.stats.subst_misses += 1;
        bump_thread(|s| s.subst_misses += 1);
        let base_run: Vec<(Var, f64)> = self
            .powers(u)
            .iter()
            .copied()
            .filter(|&(w, _)| w != v)
            .collect();
        let base = self.intern_sorted(&base_run);
        let repl_pow = self.pow_unit(replacement, a);
        let out = self.mul_units(base, repl_pow);
        self.subst_cache.insert(key, out);
        Some((a, out))
    }

    /// Interns a sorted, deduplicated, ~zero-free run, returning the id of
    /// the structurally identical unit if one exists.
    fn intern_sorted(&mut self, run: &[(Var, f64)]) -> UnitId {
        debug_assert!(
            run.windows(2).all(|w| w[0].0 < w[1].0),
            "run must be sorted"
        );
        let hash = quantized_hash(run);
        if let Some(candidates) = self.index.get(&hash) {
            for &u in candidates {
                if quantized_eq(self.powers(u), run) {
                    self.stats.intern_hits += 1;
                    bump_thread(|s| s.intern_hits += 1);
                    return u;
                }
            }
        }
        self.stats.intern_misses += 1;
        bump_thread(|s| s.intern_misses += 1);
        let start = self.runs.len() as u32;
        self.runs.extend_from_slice(run);
        let id = UnitId(self.spans.len() as u32);
        self.spans.push((start, run.len() as u32));
        self.index.entry(hash).or_default().push(id);
        id
    }
}

/// FNV-1a over the quantized run (variable index + quantized exponent).
fn quantized_hash(run: &[(Var, f64)]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut step = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for &(v, a) in run {
        step(v.index() as u64);
        step(quantize(a) as u64);
    }
    h
}

fn quantized_eq(a: &[(Var, f64)], b: &[(Var, f64)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(&(va, ea), &(vb, eb))| va == vb && quantize(ea) == quantize(eb))
}

/// The result of [`ArenaSignomial::term_diff`]: how two signomials over the
/// same arena relate, term by term.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TermDiff {
    /// Terms present in both with bit-identical coefficients.
    pub unchanged: usize,
    /// Terms whose unit monomial (exponent row) matches but whose
    /// coefficient changed — the signature of a near-miss query.
    pub coeff_changed: usize,
    /// Terms present in exactly one of the two signomials.
    pub structural: usize,
}

impl TermDiff {
    /// Whether the two signomials share their entire exponent structure
    /// (only coefficients, if anything, differ).
    pub fn same_structure(&self) -> bool {
        self.structural == 0
    }
}

/// A signomial whose terms live in an [`ExprArena`]: a flat list of
/// `(coefficient, unit id)` pairs, canonically sorted by unit id with like
/// terms merged.
///
/// All structural operations mirror the legacy [`Signomial`] arithmetic
/// exactly (same products, same left-to-right coefficient accumulation for
/// like terms), so [`ArenaSignomial::to_signomial`] reproduces the
/// expression the legacy builders would have produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArenaSignomial {
    terms: Vec<(f64, UnitId)>,
}

impl ArenaSignomial {
    /// The zero signomial (empty sum).
    pub fn zero() -> Self {
        ArenaSignomial { terms: Vec::new() }
    }

    /// A constant signomial.
    pub fn constant(arena: &ExprArena, c: f64) -> Self {
        assert!(c.is_finite(), "signomial constants must be finite");
        if c == 0.0 {
            return ArenaSignomial::zero();
        }
        ArenaSignomial {
            terms: vec![(c, arena.one())],
        }
    }

    /// The signomial consisting of a single variable.
    pub fn var(arena: &mut ExprArena, v: Var) -> Self {
        let u = arena.var(v);
        ArenaSignomial {
            terms: vec![(1.0, u)],
        }
    }

    /// A single term `c * unit`.
    pub fn term(c: f64, unit: UnitId) -> Self {
        if c == 0.0 {
            return ArenaSignomial::zero();
        }
        ArenaSignomial {
            terms: vec![(c, unit)],
        }
    }

    /// Imports a standalone signomial, interning each term's unit.
    pub fn from_signomial(arena: &mut ExprArena, s: &Signomial) -> Self {
        let mut out = ArenaSignomial {
            terms: s
                .terms()
                .map(|(c, m)| (c, arena.intern_monomial_unit(m)))
                .collect(),
        };
        out.canonicalize();
        out
    }

    /// Imports a standalone monomial as a one-term signomial.
    pub fn from_monomial(arena: &mut ExprArena, m: &Monomial) -> Self {
        let u = arena.intern_monomial_unit(m);
        ArenaSignomial::term(m.coeff(), u)
    }

    /// Exports to a standalone [`Signomial`] (the thin-façade boundary: all
    /// public model APIs return this form).
    pub fn to_signomial(&self, arena: &ExprArena) -> Signomial {
        Signomial::from_terms(
            self.terms
                .iter()
                .map(|&(c, u)| (c, Monomial::new(1.0, arena.powers(u).iter().copied())))
                .collect(),
        )
    }

    /// Number of terms after canonicalization.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether the signomial is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(coefficient, unit)` pairs in canonical (id) order.
    pub fn terms(&self) -> impl Iterator<Item = (f64, UnitId)> + '_ {
        self.terms.iter().copied()
    }

    /// Diffs two signomials over the same arena, term by term.
    ///
    /// Because unit monomials are hash-consed, exponent-row equality is a
    /// single integer compare on [`UnitId`] and both term lists are sorted
    /// by it, so the diff is one linear merge with no exponent walks. This
    /// is what lets a near-miss re-lowering decide cheaply which compiled
    /// CSR rows changed: a shared unit id means the exponent row is
    /// bitwise identical and only the coefficient can differ.
    pub fn term_diff(&self, other: &Self) -> TermDiff {
        let mut diff = TermDiff::default();
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() && j < other.terms.len() {
            let (ca, ua) = self.terms[i];
            let (cb, ub) = other.terms[j];
            match ua.cmp(&ub) {
                std::cmp::Ordering::Equal => {
                    if ca.to_bits() == cb.to_bits() {
                        diff.unchanged += 1;
                    } else {
                        diff.coeff_changed += 1;
                    }
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    diff.structural += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    diff.structural += 1;
                    j += 1;
                }
            }
        }
        diff.structural += (self.terms.len() - i) + (other.terms.len() - j);
        diff
    }

    /// Whether any term mentions `v`.
    pub fn contains(&self, arena: &ExprArena, v: Var) -> bool {
        self.terms.iter().any(|&(_, u)| {
            arena
                .powers(u)
                .binary_search_by_key(&v, |&(w, _)| w)
                .is_ok()
        })
    }

    /// Evaluates at a point.
    pub fn eval(&self, arena: &ExprArena, point: &Assignment) -> f64 {
        self.terms
            .iter()
            .map(|&(c, u)| c * arena.eval_unit(u, point))
            .sum()
    }

    /// The sum of two arena signomials (no new units needed).
    pub fn add(&self, other: &Self) -> Self {
        let mut out = ArenaSignomial {
            terms: self
                .terms
                .iter()
                .chain(other.terms.iter())
                .copied()
                .collect(),
        };
        out.canonicalize();
        out
    }

    /// Multiplies every coefficient by `c` (which may be negative or zero).
    pub fn scale(&self, c: f64) -> Self {
        assert!(c.is_finite(), "scale factor must be finite");
        let mut out = ArenaSignomial {
            terms: self.terms.iter().map(|&(k, u)| (k * c, u)).collect(),
        };
        out.canonicalize();
        out
    }

    /// The product of two arena signomials.
    pub fn mul(arena: &mut ExprArena, a: &Self, b: &Self) -> Self {
        let mut terms = Vec::with_capacity(a.terms.len() * b.terms.len());
        for &(ca, ua) in &a.terms {
            for &(cb, ub) in &b.terms {
                terms.push((ca * cb, arena.mul_units(ua, ub)));
            }
        }
        let mut out = ArenaSignomial { terms };
        out.canonicalize();
        out
    }

    /// Multiplies by a standalone monomial (exact, no term growth).
    pub fn mul_monomial(&self, arena: &mut ExprArena, m: &Monomial) -> Self {
        let um = arena.intern_monomial_unit(m);
        let c = m.coeff();
        let mut out = ArenaSignomial {
            terms: self
                .terms
                .iter()
                .map(|&(k, u)| (k * c, arena.mul_units(u, um)))
                .collect(),
        };
        out.canonicalize();
        out
    }

    /// Substitutes `replacement` for every occurrence of variable `v` in
    /// every term (the arena twin of [`Signomial::substitute`]).
    pub fn substitute(&self, arena: &mut ExprArena, v: Var, replacement: &Monomial) -> Self {
        let repl_unit = arena.intern_monomial_unit(replacement);
        let repl_coeff = replacement.coeff();
        let mut out = ArenaSignomial {
            terms: self
                .terms
                .iter()
                .map(|&(k, u)| match arena.substitute_unit(u, v, repl_unit) {
                    Some((a, nu)) => (k * repl_coeff.powf(a), nu),
                    None => (k, u),
                })
                .collect(),
        };
        out.canonicalize();
        out
    }

    /// Sorts by unit id (stable: like terms keep construction order) and
    /// merges adjacent like terms left to right, dropping ~zero sums — the
    /// same accumulation the legacy canonicalization performs.
    fn canonicalize(&mut self) {
        self.terms.sort_by_key(|&(_, u)| u);
        let mut write = 0usize;
        for read in 0..self.terms.len() {
            if write > 0 && self.terms[write - 1].1 == self.terms[read].1 {
                self.terms[write - 1].0 += self.terms[read].0;
            } else {
                self.terms[write] = self.terms[read];
                write += 1;
            }
        }
        self.terms.truncate(write);
        self.terms.retain(|&(c, _)| c.abs() > CANON_EPS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarRegistry;

    fn setup() -> (VarRegistry, Var, Var) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        (reg, x, y)
    }

    #[test]
    fn interning_dedupes_structurally() {
        let (_, x, y) = setup();
        let mut arena = ExprArena::new();
        let ux = arena.var(x);
        let uy = arena.var(y);
        let xy1 = arena.mul_units(ux, uy);
        let xy2 = arena.mul_units(uy, ux); // answered by the mul cache
        assert_eq!(xy1, xy2);
        assert_eq!(arena.num_units(), 4); // 1, x, y, xy
        assert_eq!(arena.var(x), ux); // re-interning hits the index
        assert_eq!(arena.intern_hits(), 1);
    }

    #[test]
    fn mul_cancels_exponents() {
        let (_, x, _) = setup();
        let mut arena = ExprArena::new();
        let ux = arena.var(x);
        let inv = arena.pow_unit(ux, -1.0);
        let one = arena.mul_units(ux, inv);
        assert_eq!(one, arena.one());
    }

    #[test]
    fn roundtrip_matches_legacy_signomial() {
        let (reg, x, y) = setup();
        let legacy =
            Signomial::var(x) * 2.0 + Signomial::var(y).pow_i(2) - Signomial::constant(3.0);
        let mut arena = ExprArena::new();
        let imported = ArenaSignomial::from_signomial(&mut arena, &legacy);
        assert_eq!(imported.to_signomial(&arena), legacy);
        let mut pt = reg.assignment();
        pt.set(x, 2.5);
        pt.set(y, 4.0);
        assert_eq!(imported.eval(&arena, &pt), legacy.eval(&pt));
    }

    #[test]
    fn arena_ops_mirror_legacy_ops() {
        let (reg, x, y) = setup();
        let a = Signomial::var(x) + Signomial::constant(1.0);
        let b = Signomial::var(y) - Signomial::constant(2.0);
        let m = Monomial::new(3.0, [(y, 1.0)]);

        let mut arena = ExprArena::new();
        let aa = ArenaSignomial::from_signomial(&mut arena, &a);
        let ab = ArenaSignomial::from_signomial(&mut arena, &b);

        assert_eq!(aa.add(&ab).to_signomial(&arena), &a + &b);
        assert_eq!(
            ArenaSignomial::mul(&mut arena, &aa, &ab).to_signomial(&arena),
            &a * &b
        );
        assert_eq!(
            aa.mul_monomial(&mut arena, &m).to_signomial(&arena),
            a.mul_monomial(&m)
        );
        assert_eq!(
            aa.substitute(&mut arena, x, &m).to_signomial(&arena),
            a.substitute(x, &m)
        );
        assert_eq!(aa.scale(-1.5).to_signomial(&arena), a.scale(-1.5));

        let mut pt = reg.assignment();
        pt.set(x, 1.5);
        pt.set(y, 0.5);
        assert_eq!(aa.eval(&arena, &pt), a.eval(&pt));
    }

    #[test]
    fn stats_count_hits_and_misses_per_table() {
        let (_, x, y) = setup();
        let mut arena = ExprArena::new();
        let ux = arena.var(x);
        let uy = arena.var(y);
        let _ = arena.mul_units(ux, uy); // miss
        let _ = arena.mul_units(uy, ux); // hit (unordered key)
        let repl = arena.var(y); // intern hit
        let _ = arena.substitute_unit(ux, x, repl); // miss
        let _ = arena.substitute_unit(ux, x, repl); // hit
        let stats = arena.stats();
        assert_eq!(stats.mul_hits, 1);
        assert_eq!(stats.mul_misses, 1);
        assert_eq!(stats.subst_hits, 1);
        assert_eq!(stats.subst_misses, 1);
        assert_eq!(stats.intern_hits, arena.intern_hits());
        assert!(stats.intern_misses >= 3); // 1, x, y at minimum
        assert!(stats.intern_hit_rate() > 0.0 && stats.intern_hit_rate() < 1.0);
    }

    #[test]
    fn thread_stats_accumulate_across_arenas() {
        let (_, x, y) = setup();
        let mark = thread_arena_stats();
        let per_arena = {
            let mut arena = ExprArena::new();
            let ux = arena.var(x);
            let uy = arena.var(y);
            let _ = arena.mul_units(ux, uy);
            let _ = arena.var(x);
            arena.stats()
        };
        // A second arena on the same thread keeps accumulating.
        let second = {
            let mut arena = ExprArena::new();
            let _ = arena.var(y);
            arena.stats()
        };
        let delta = thread_arena_stats().delta_since(&mark);
        let mut expected = per_arena;
        expected.merge(&second);
        assert_eq!(delta, expected);
        assert_eq!(delta.intern_hits, per_arena.intern_hits);
        assert!(delta.total_ops() > 0);
    }

    #[test]
    fn term_diff_classifies_changes() {
        let (_, x, y) = setup();
        let mut arena = ExprArena::new();
        // a = 2*x^2*y + 3/x ; b = 5*x^2*y + 3/x + 7*y
        let u_xy = arena.intern_sorted(&[(x, 2.0), (y, 1.0)]);
        let u_inv = arena.intern_sorted(&[(x, -1.0)]);
        let u_y = arena.var(y);
        let a = ArenaSignomial::term(2.0, u_xy).add(&ArenaSignomial::term(3.0, u_inv));
        let b = ArenaSignomial::term(5.0, u_xy)
            .add(&ArenaSignomial::term(3.0, u_inv))
            .add(&ArenaSignomial::term(7.0, u_y));
        let diff = a.term_diff(&b);
        assert_eq!(diff.unchanged, 1); // 3/x
        assert_eq!(diff.coeff_changed, 1); // x^2*y coefficient 2 -> 5
        assert_eq!(diff.structural, 1); // 7*y only in b
        assert!(!diff.same_structure());
        // Identical signomials diff to all-unchanged.
        let self_diff = a.term_diff(&a);
        assert_eq!(self_diff.unchanged, 2);
        assert_eq!(self_diff.coeff_changed, 0);
        assert!(self_diff.same_structure());
    }

    #[test]
    fn substitution_is_memoized() {
        let (_, x, y) = setup();
        let mut arena = ExprArena::new();
        let u = arena.intern_sorted(&[(x, 2.0), (y, 1.0)]);
        let repl = arena.var(y);
        let first = arena.substitute_unit(u, x, repl);
        let second = arena.substitute_unit(u, x, repl);
        assert_eq!(first, second);
        let (a, nu) = first.unwrap();
        assert_eq!(a, 2.0);
        assert_eq!(arena.powers(nu), &[(y, 3.0)]);
    }
}
