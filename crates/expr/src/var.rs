//! Variable handles and the registry that interns their names.

use crate::{Assignment, Signomial};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A handle to a strictly positive real variable interned in a
/// [`VarRegistry`].
///
/// Handles are cheap to copy and order; two handles are equal exactly when
/// they were produced by the same registry entry.
///
/// # Examples
///
/// ```
/// use thistle_expr::VarRegistry;
/// let mut reg = VarRegistry::new();
/// let a = reg.var("a");
/// assert_eq!(reg.var("a"), a); // interning: same name, same handle
/// assert_eq!(reg.name(a), "a");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Returns the dense index of this variable within its registry.
    ///
    /// Indices are assigned in registration order starting from zero, so they
    /// can be used to address flat arrays sized by
    /// [`VarRegistry::len`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from a dense index.
    ///
    /// The caller is responsible for only using indices previously obtained
    /// from [`Var::index`] with the same registry; mixing registries gives
    /// meaningless (but memory-safe) results.
    pub fn from_index(index: usize) -> Self {
        Var(u32::try_from(index).expect("variable index exceeds u32 range"))
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Interns variable names and renders expressions with human-readable names.
///
/// All expressions in a model should share one registry so that their
/// variables can be mixed freely and evaluated against a common
/// [`Assignment`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VarRegistry {
    names: Vec<String>,
    by_name: HashMap<String, Var>,
}

impl VarRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the handle for `name`, interning it on first use.
    ///
    /// # Examples
    ///
    /// ```
    /// use thistle_expr::VarRegistry;
    /// let mut reg = VarRegistry::new();
    /// let x = reg.var("x");
    /// let y = reg.var("y");
    /// assert_ne!(x, y);
    /// ```
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = Var(u32::try_from(self.names.len()).expect("too many variables"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), v);
        v
    }

    /// Looks up an already-interned variable by name.
    pub fn get(&self, name: &str) -> Option<Var> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this registry.
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry has no variables.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all variables in registration order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len()).map(Var::from_index)
    }

    /// Creates an all-ones assignment sized for this registry.
    ///
    /// One is the multiplicative identity for trip counts, so an untouched
    /// assignment corresponds to "no tiling anywhere".
    pub fn assignment(&self) -> Assignment {
        Assignment::ones(self.names.len())
    }

    /// Renders a signomial with variable names from this registry.
    ///
    /// Terms are printed in the expression's canonical order; exponents equal
    /// to one are elided (`x` rather than `x^1`).
    pub fn render(&self, expr: &Signomial) -> String {
        expr.render_with(|v| self.name(v).to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut reg = VarRegistry::new();
        let a = reg.var("alpha");
        let b = reg.var("beta");
        assert_eq!(reg.var("alpha"), a);
        assert_eq!(reg.var("beta"), b);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.name(a), "alpha");
        assert_eq!(reg.name(b), "beta");
    }

    #[test]
    fn get_returns_none_for_unknown() {
        let mut reg = VarRegistry::new();
        reg.var("x");
        assert!(reg.get("y").is_none());
        assert!(reg.get("x").is_some());
    }

    #[test]
    fn indices_are_dense_and_roundtrip() {
        let mut reg = VarRegistry::new();
        let vars: Vec<_> = (0..10).map(|i| reg.var(&format!("v{i}"))).collect();
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(v.index(), i);
            assert_eq!(Var::from_index(i), *v);
        }
        assert_eq!(reg.iter().count(), 10);
    }

    #[test]
    fn default_assignment_is_all_ones() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let asg = reg.assignment();
        assert_eq!(asg.get(x), 1.0);
    }

    #[test]
    fn display_is_nonempty() {
        let v = Var::from_index(3);
        assert_eq!(v.to_string(), "v3");
    }
}
