//! Symbolic expression engine for Thistle's analytical accelerator models.
//!
//! The data-footprint and data-volume expressions that drive Thistle's
//! geometric programs are built from three layers of structure over a set of
//! strictly positive real variables (trip counts, capacities, ...):
//!
//! * [`Monomial`] — `c * x1^a1 * x2^a2 * ...` with `c > 0` and real exponents.
//! * [`Posynomial`] — a sum of monomials (all coefficients positive). These
//!   are the only expressions a geometric program may contain.
//! * [`Signomial`] — a sum of monomials whose coefficients may be negative.
//!   Convolution footprints such as `x*H_t + R_t - x` are signomials; the
//!   solver uses their posynomial upper bound
//!   ([`Signomial::posynomial_upper_bound`]).
//!
//! Variables are interned in a [`VarRegistry`]; expressions refer to them by
//! the lightweight copyable handle [`Var`].
//!
//! Two further representations serve the hot paths:
//!
//! * [`ExprArena`] / [`ArenaSignomial`] — an arena-backed, hash-consed IR
//!   for *building* large expression families: variable parts are interned
//!   once into a shared slab and addressed by [`UnitId`], so repeated
//!   subterms (halo factors, shared tile products) cost a hash lookup.
//! * [`CompiledSignomial`] / [`CompiledPosynomial`] — a frozen CSR exponent
//!   matrix over the live variables for fast repeated *evaluation*
//!   (candidate rescoring, condensation weights).
//!
//! # Examples
//!
//! ```
//! use thistle_expr::{VarRegistry, Posynomial};
//!
//! let mut reg = VarRegistry::new();
//! let x = reg.var("x");
//! let y = reg.var("y");
//!
//! // f = 2*x*y + y^2
//! let f = Posynomial::from_var(x) * Posynomial::from_var(y) * 2.0
//!     + Posynomial::from_var(y).pow_i(2);
//! let mut point = reg.assignment();
//! point.set(x, 3.0);
//! point.set(y, 5.0);
//! assert_eq!(f.eval(&point), 2.0 * 3.0 * 5.0 + 25.0);
//! assert_eq!(reg.render(&f.to_signomial()), "2*x*y + y^2");
//! ```

#![deny(missing_docs)]

mod arena;
mod assignment;
mod batch;
mod compiled;
mod monomial;
mod posynomial;
mod signomial;
mod var;

pub use arena::{thread_arena_stats, ArenaSignomial, ArenaStats, ExprArena, TermDiff, UnitId};
pub use assignment::Assignment;
pub use batch::{SignatureBuilder, SoaCsr, StructuralSignature, LANES};
pub use compiled::{CompiledPosynomial, CompiledSignomial, EvalScratch};
pub use monomial::Monomial;
pub use posynomial::Posynomial;
pub use signomial::Signomial;
pub use var::{Var, VarRegistry};

/// Tolerance used when canonicalizing expressions (dropping ~zero terms and
/// ~zero exponents produced by cancellation).
pub(crate) const CANON_EPS: f64 = 1e-12;

#[cfg(test)]
mod proptests;
