//! Point assignments mapping variables to positive real values.

use crate::Var;
use serde::{Deserialize, Serialize};

/// A dense map from variables to positive real values, used to evaluate
/// expressions at a point.
///
/// Unset variables default to `1.0` (the multiplicative identity — for trip
/// counts this means "that loop does not exist").
///
/// # Examples
///
/// ```
/// use thistle_expr::{Assignment, VarRegistry};
/// let mut reg = VarRegistry::new();
/// let x = reg.var("x");
/// let mut point = reg.assignment();
/// assert_eq!(point.get(x), 1.0);
/// point.set(x, 4.0);
/// assert_eq!(point.get(x), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    values: Vec<f64>,
}

impl Assignment {
    /// Creates an assignment of `len` variables, all set to one.
    pub fn ones(len: usize) -> Self {
        Assignment {
            values: vec![1.0; len],
        }
    }

    /// Creates an assignment from explicit per-variable values, indexed by
    /// [`Var::index`].
    pub fn from_values(values: Vec<f64>) -> Self {
        Assignment { values }
    }

    /// Returns the value of `v`, or `1.0` if `v` is beyond the stored range.
    pub fn get(&self, v: Var) -> f64 {
        self.values.get(v.index()).copied().unwrap_or(1.0)
    }

    /// Sets the value of `v`, growing the assignment with ones if needed.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite and strictly positive: expressions in
    /// this crate are only defined over the positive orthant.
    pub fn set(&mut self, v: Var, value: f64) {
        assert!(
            value.is_finite() && value > 0.0,
            "assignment values must be finite and positive, got {value}"
        );
        if v.index() >= self.values.len() {
            self.values.resize(v.index() + 1, 1.0);
        }
        self.values[v.index()] = value;
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Read-only view of the dense value vector.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl FromIterator<(Var, f64)> for Assignment {
    fn from_iter<T: IntoIterator<Item = (Var, f64)>>(iter: T) -> Self {
        let mut asg = Assignment::ones(0);
        for (v, x) in iter {
            asg.set(v, x);
        }
        asg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_one_out_of_range() {
        let asg = Assignment::ones(2);
        assert_eq!(asg.get(Var::from_index(5)), 1.0);
    }

    #[test]
    fn set_grows() {
        let mut asg = Assignment::ones(0);
        asg.set(Var::from_index(3), 2.5);
        assert_eq!(asg.len(), 4);
        assert_eq!(asg.get(Var::from_index(3)), 2.5);
        assert_eq!(asg.get(Var::from_index(1)), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive() {
        let mut asg = Assignment::ones(1);
        asg.set(Var::from_index(0), 0.0);
    }

    #[test]
    fn from_iterator_collects_pairs() {
        let asg: Assignment = vec![(Var::from_index(0), 2.0), (Var::from_index(2), 3.0)]
            .into_iter()
            .collect();
        assert_eq!(asg.get(Var::from_index(0)), 2.0);
        assert_eq!(asg.get(Var::from_index(1)), 1.0);
        assert_eq!(asg.get(Var::from_index(2)), 3.0);
    }
}
