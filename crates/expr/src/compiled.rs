//! Compiled expression forms: contiguous exponent matrices for fast
//! repeated evaluation.
//!
//! A [`Signomial`] is the right representation for *building* expressions —
//! canonicalization, substitution, posynomial bounds — but evaluating one
//! walks a vector of monomials and calls `powf` per variable per term. The
//! compiled forms here freeze a finished expression into a compressed
//! sparse-row exponent matrix over its *live* variables with contiguous
//! coefficient arrays: evaluation precomputes `ln x_j` once per point and
//! each term costs one sparse dot product plus one `exp`. Candidate
//! rescoring (thousands of integer design points against the same exact
//! signomial) and condensation (per-round AM-GM weights against the same
//! posynomial) both sit on this path.

use crate::{Assignment, Monomial, Posynomial, Signomial, Var};

/// Reusable scratch for compiled evaluation (the `ln x` buffer and per-term
/// values), so hot loops evaluate without allocating.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    lnx: Vec<f64>,
    /// Per-term values from the most recent
    /// [`CompiledPosynomial::term_values`] call.
    terms: Vec<f64>,
}

/// A signomial compiled to CSR form: term `k` is
/// `coeffs[k] * exp(sum_j exps[j] * ln x_cols[j])` for `j` in
/// `row_ptr[k]..row_ptr[k+1]`, with `cols` indexing the sorted live-variable
/// list `vars`.
///
/// # Examples
///
/// ```
/// use thistle_expr::{CompiledSignomial, Signomial, VarRegistry};
/// let mut reg = VarRegistry::new();
/// let x = reg.var("x");
/// let s = Signomial::var(x) * 3.0 - Signomial::constant(1.0);
/// let c = CompiledSignomial::compile(&s);
/// let mut p = reg.assignment();
/// p.set(x, 2.0);
/// assert!((c.eval(&p) - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSignomial {
    /// Sorted live variables; CSR columns index into this list.
    vars: Vec<Var>,
    /// Per-term signed coefficients.
    coeffs: Vec<f64>,
    /// CSR row boundaries, length `num_terms + 1`.
    row_ptr: Vec<u32>,
    /// CSR column indices (into `vars`).
    cols: Vec<u32>,
    /// CSR exponent values, parallel to `cols`.
    exps: Vec<f64>,
}

impl CompiledSignomial {
    /// Compiles a canonicalized signomial.
    pub fn compile(s: &Signomial) -> Self {
        Self::from_terms(s.terms())
    }

    fn from_terms<'a>(terms: impl Iterator<Item = (f64, &'a Monomial)>) -> Self {
        let terms: Vec<(f64, &Monomial)> = terms.collect();
        let mut vars: Vec<Var> = Vec::new();
        for &(_, m) in &terms {
            for (v, _) in m.powers() {
                if let Err(i) = vars.binary_search(&v) {
                    vars.insert(i, v);
                }
            }
        }
        let mut coeffs = Vec::new();
        let mut row_ptr = vec![0u32];
        let mut cols = Vec::new();
        let mut exps = Vec::new();
        for &(c, m) in &terms {
            coeffs.push(c * m.coeff());
            for (v, a) in m.powers() {
                let col = vars.binary_search(&v).expect("live var is indexed");
                cols.push(col as u32);
                exps.push(a);
            }
            row_ptr.push(cols.len() as u32);
        }
        CompiledSignomial {
            vars,
            coeffs,
            row_ptr,
            cols,
            exps,
        }
    }

    /// Number of terms (CSR rows).
    pub fn num_terms(&self) -> usize {
        self.coeffs.len()
    }

    /// The sorted live variables of the expression.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Per-term signed coefficients, in canonical term order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The sparse exponent row of term `k`: parallel `(cols, exps)` slices,
    /// with columns indexing [`CompiledSignomial::vars`].
    pub fn row(&self, k: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.row_ptr[k] as usize, self.row_ptr[k + 1] as usize);
        (&self.cols[lo..hi], &self.exps[lo..hi])
    }

    /// Evaluates at a point (allocates a small scratch; hot loops should
    /// hold an [`EvalScratch`] and call [`CompiledSignomial::eval_with`]).
    pub fn eval(&self, point: &Assignment) -> f64 {
        self.eval_with(point, &mut EvalScratch::default())
    }

    /// Evaluates at a point, reusing `scratch` across calls.
    pub fn eval_with(&self, point: &Assignment, scratch: &mut EvalScratch) -> f64 {
        self.load_lnx(point, scratch);
        let mut total = 0.0;
        for k in 0..self.coeffs.len() {
            total += self.coeffs[k] * self.term_factor(k, &scratch.lnx);
        }
        total
    }

    fn load_lnx(&self, point: &Assignment, scratch: &mut EvalScratch) {
        scratch.lnx.clear();
        scratch
            .lnx
            .extend(self.vars.iter().map(|&v| point.get(v).ln()));
    }

    /// `exp(sum_j a_j ln x_j)` for term `k`.
    fn term_factor(&self, k: usize, lnx: &[f64]) -> f64 {
        let (lo, hi) = (self.row_ptr[k] as usize, self.row_ptr[k + 1] as usize);
        let mut acc = 0.0;
        for j in lo..hi {
            acc += self.exps[j] * lnx[self.cols[j] as usize];
        }
        acc.exp()
    }
}

/// A posynomial compiled to the same CSR form as [`CompiledSignomial`],
/// with the positivity invariant checked at compile time. Used by the
/// condensation engine to recompute AM-GM monomial weights each round
/// without re-walking monomial maps.
#[derive(Debug, Clone)]
pub struct CompiledPosynomial {
    inner: CompiledSignomial,
}

impl CompiledPosynomial {
    /// Compiles a posynomial.
    pub fn compile(p: &Posynomial) -> Self {
        let inner = CompiledSignomial::from_terms(p.terms());
        debug_assert!(inner.coeffs.iter().all(|&c| c > 0.0));
        CompiledPosynomial { inner }
    }

    /// Number of terms (CSR rows).
    pub fn num_terms(&self) -> usize {
        self.inner.num_terms()
    }

    /// The sorted live variables of the expression.
    pub fn vars(&self) -> &[Var] {
        self.inner.vars()
    }

    /// Per-term (positive) coefficients, in canonical term order.
    pub fn coeffs(&self) -> &[f64] {
        self.inner.coeffs()
    }

    /// The sparse exponent row of term `k` (see
    /// [`CompiledSignomial::row`]).
    pub fn row(&self, k: usize) -> (&[u32], &[f64]) {
        self.inner.row(k)
    }

    /// Evaluates at a point.
    pub fn eval(&self, point: &Assignment) -> f64 {
        self.inner.eval(point)
    }

    /// Evaluates at a point, reusing `scratch`.
    pub fn eval_with(&self, point: &Assignment, scratch: &mut EvalScratch) -> f64 {
        self.inner.eval_with(point, scratch)
    }

    /// Fills `scratch.terms` with every term's value at `point` and returns
    /// the total — the quantities the AM-GM condensation weights are built
    /// from.
    pub fn term_values<'s>(
        &self,
        point: &Assignment,
        scratch: &'s mut EvalScratch,
    ) -> (f64, &'s [f64]) {
        self.inner.load_lnx(point, scratch);
        scratch.terms.clear();
        let mut total = 0.0;
        for k in 0..self.inner.coeffs.len() {
            let value = self.inner.coeffs[k] * self.inner.term_factor(k, &scratch.lnx);
            scratch.terms.push(value);
            total += value;
        }
        (total, &scratch.terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarRegistry;

    #[test]
    fn compiled_matches_legacy_eval() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let s = Signomial::var(x).pow_i(2) * 3.0 + Signomial::var(y) * Signomial::var(x)
            - Signomial::constant(7.0);
        let c = CompiledSignomial::compile(&s);
        assert_eq!(c.num_terms(), 3);
        assert_eq!(c.vars(), &[x, y]);
        let mut p = reg.assignment();
        p.set(x, 3.0);
        p.set(y, 5.0);
        let exact = s.eval(&p);
        let got = c.eval(&p);
        assert!((got - exact).abs() <= 1e-12 * (1.0 + exact.abs()));
    }

    #[test]
    fn term_values_sum_to_eval() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let p = Posynomial::from_var(x).pow_i(2) + Posynomial::constant(4.0);
        let c = CompiledPosynomial::compile(&p);
        let mut pt = reg.assignment();
        pt.set(x, 2.0);
        let mut scratch = EvalScratch::default();
        let (total, terms) = c.term_values(&pt, &mut scratch);
        assert_eq!(terms.len(), 2);
        assert!((total - p.eval(&pt)).abs() < 1e-12);
        assert!((terms.iter().sum::<f64>() - total).abs() < 1e-12);
    }

    #[test]
    fn constant_only_signomial_compiles() {
        let s = Signomial::constant(-2.5);
        let c = CompiledSignomial::compile(&s);
        assert_eq!(c.vars().len(), 0);
        assert_eq!(c.eval(&Assignment::ones(0)), -2.5);
    }
}
