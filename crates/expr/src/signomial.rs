//! Signomials: sums of monomials with arbitrary-sign coefficients.

use crate::{Assignment, Monomial, Posynomial, Var, CANON_EPS};
use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Neg, Sub};

/// One signed term of a [`Signomial`]: `coeff * unit` where `unit` is a
/// monomial with coefficient one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Term {
    coeff: f64,
    unit: Monomial,
}

/// A sum of monomials whose coefficients may be negative.
///
/// Signomials arise from convolution footprints: the extent of index
/// expression `x*h + r` over a `H_t x R_t` tile is `x*H_t + R_t - x`, which
/// has a negative constant term. Geometric programs cannot contain signomials
/// directly, so the solver path uses [`Signomial::posynomial_upper_bound`];
/// the exact signomial is kept for integer evaluation.
///
/// Terms with (numerically) equal variable parts are combined, terms whose
/// coefficient cancels to ~zero are dropped, and terms are kept in a
/// deterministic canonical order, so structural equality (`==`) agrees with
/// algebraic equality for expressions built by identical algebra.
///
/// # Examples
///
/// ```
/// use thistle_expr::{Signomial, VarRegistry};
/// let mut reg = VarRegistry::new();
/// let h = reg.var("h");
/// let r = reg.var("r");
/// // extent of 2*w + s over a tile: 2h + r - 2
/// let extent = Signomial::var(h) * 2.0 + Signomial::var(r) - Signomial::constant(2.0);
/// let ub = extent.posynomial_upper_bound().unwrap();
/// let mut p = reg.assignment();
/// p.set(h, 4.0);
/// p.set(r, 3.0);
/// assert_eq!(extent.eval(&p), 9.0);
/// assert_eq!(ub.eval(&p), 11.0); // upper bound drops "-2"
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Signomial {
    terms: Vec<Term>,
}

impl Signomial {
    /// The zero signomial (empty sum).
    pub fn zero() -> Self {
        Signomial { terms: Vec::new() }
    }

    /// A constant signomial (any finite value, including zero or negative).
    pub fn constant(c: f64) -> Self {
        assert!(c.is_finite(), "signomial constants must be finite");
        if c == 0.0 {
            return Signomial::zero();
        }
        Signomial {
            terms: vec![Term {
                coeff: c,
                unit: Monomial::one(),
            }],
        }
    }

    /// The signomial consisting of a single variable.
    pub fn var(v: Var) -> Self {
        Signomial::from(Monomial::var(v))
    }

    /// Number of terms after canonicalization.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether the signomial is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether every coefficient is positive (i.e. the expression is exactly
    /// a posynomial).
    pub fn is_posynomial(&self) -> bool {
        self.terms.iter().all(|t| t.coeff > 0.0)
    }

    /// Iterates over `(coefficient, unit monomial)` pairs in canonical order.
    pub fn terms(&self) -> impl Iterator<Item = (f64, &Monomial)> + '_ {
        self.terms.iter().map(|t| (t.coeff, &t.unit))
    }

    /// Evaluates the signomial at a point.
    pub fn eval(&self, point: &Assignment) -> f64 {
        self.terms
            .iter()
            .map(|t| t.coeff * t.unit.eval(point))
            .sum()
    }

    /// Multiplies every coefficient by `c` (which may be negative or zero).
    pub fn scale(&self, c: f64) -> Self {
        assert!(c.is_finite(), "scale factor must be finite");
        let mut out = Signomial {
            terms: self
                .terms
                .iter()
                .map(|t| Term {
                    coeff: t.coeff * c,
                    unit: t.unit.clone(),
                })
                .collect(),
        };
        out.canonicalize();
        out
    }

    /// Multiplies by a monomial (exact, no term growth).
    pub fn mul_monomial(&self, m: &Monomial) -> Self {
        let unit = m.scale(1.0 / m.coeff());
        let mut out = Signomial {
            terms: self
                .terms
                .iter()
                .map(|t| Term {
                    coeff: t.coeff * m.coeff(),
                    unit: &t.unit * &unit,
                })
                .collect(),
        };
        out.canonicalize();
        out
    }

    /// Substitutes `replacement` for every occurrence of variable `v` in
    /// every term (see [`Monomial::substitute`]).
    pub fn substitute(&self, v: Var, replacement: &Monomial) -> Self {
        let mut out = Signomial {
            terms: self
                .terms
                .iter()
                .map(|t| Term {
                    coeff: t.coeff,
                    unit: t.unit.substitute(v, replacement),
                })
                .collect(),
        };
        // Substitution may introduce a coefficient from `replacement`.
        for t in &mut out.terms {
            let c = t.unit.coeff();
            if c != 1.0 {
                t.coeff *= c;
                t.unit = t.unit.scale(1.0 / c);
            }
        }
        out.canonicalize();
        out
    }

    /// Raises to a non-negative integer power by repeated multiplication.
    pub fn pow_i(&self, p: u32) -> Self {
        let mut acc = Signomial::constant(1.0);
        for _ in 0..p {
            acc = &acc * self;
        }
        acc
    }

    /// Whether any term mentions `v`.
    pub fn contains(&self, v: Var) -> bool {
        self.terms.iter().any(|t| t.unit.contains(v))
    }

    /// The exact posynomial value of this signomial, if every coefficient is
    /// positive.
    pub fn to_posynomial(&self) -> Option<Posynomial> {
        if self.is_posynomial() && !self.is_zero() {
            Some(Posynomial::from_signomial_unchecked(self.clone()))
        } else {
            None
        }
    }

    /// A posynomial that upper-bounds this signomial over the positive
    /// orthant, obtained by dropping all negative terms.
    ///
    /// Returns `None` if no positive terms remain (the bound would be zero,
    /// which is not a posynomial).
    pub fn posynomial_upper_bound(&self) -> Option<Posynomial> {
        let kept = Signomial {
            terms: self
                .terms
                .iter()
                .filter(|t| t.coeff > 0.0)
                .cloned()
                .collect(),
        };
        if kept.is_zero() {
            None
        } else {
            Some(Posynomial::from_signomial_unchecked(kept))
        }
    }

    /// Renders the expression using `name` to print variables.
    ///
    /// Used by [`crate::VarRegistry::render`]; exposed for callers that keep
    /// their own naming scheme.
    pub fn render_with(&self, name: impl Fn(Var) -> String) -> String {
        if self.terms.is_empty() {
            return "0".to_owned();
        }
        let mut out = String::new();
        for (i, t) in self.terms.iter().enumerate() {
            let coeff = t.coeff;
            if i == 0 {
                if coeff < 0.0 {
                    out.push('-');
                }
            } else if coeff < 0.0 {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            let mag = coeff.abs();
            let mut factors: Vec<String> = Vec::new();
            if (mag - 1.0).abs() > CANON_EPS || t.unit.is_constant() {
                factors.push(format_coeff(mag));
            }
            for (v, a) in t.unit.powers() {
                if (a - 1.0).abs() <= CANON_EPS {
                    factors.push(name(v));
                } else {
                    factors.push(format!("{}^{}", name(v), format_coeff(a)));
                }
            }
            out.push_str(&factors.join("*"));
        }
        out
    }

    pub(crate) fn from_terms(terms: Vec<(f64, Monomial)>) -> Self {
        let mut out = Signomial {
            terms: terms
                .into_iter()
                .map(|(c, m)| {
                    let unit_coeff = m.coeff();
                    Term {
                        coeff: c * unit_coeff,
                        unit: m.scale(1.0 / unit_coeff),
                    }
                })
                .collect(),
        };
        out.canonicalize();
        out
    }

    fn canonicalize(&mut self) {
        // Stable sort on the quantized variable part: like terms become
        // adjacent while preserving construction order within each group, so
        // coefficient sums are accumulated deterministically.
        self.terms.sort_by(|a, b| a.unit.key_cmp(&b.unit));
        let mut merged: Vec<Term> = Vec::with_capacity(self.terms.len());
        for t in self.terms.drain(..) {
            match merged.last_mut() {
                Some(last) if last.unit.key_cmp(&t.unit) == std::cmp::Ordering::Equal => {
                    last.coeff += t.coeff;
                }
                _ => merged.push(t),
            }
        }
        merged.retain(|t| t.coeff.abs() > CANON_EPS);
        self.terms = merged;
    }
}

fn format_coeff(c: f64) -> String {
    if (c - c.round()).abs() < 1e-9 && c.abs() < 1e15 {
        format!("{}", c.round() as i64)
    } else {
        format!("{c}")
    }
}

impl From<Monomial> for Signomial {
    fn from(m: Monomial) -> Self {
        let c = m.coeff();
        Signomial {
            terms: vec![Term {
                coeff: c,
                unit: m.scale(1.0 / c),
            }],
        }
    }
}

impl Default for Signomial {
    fn default() -> Self {
        Signomial::zero()
    }
}

impl Add for &Signomial {
    type Output = Signomial;
    fn add(self, rhs: &Signomial) -> Signomial {
        let mut out = Signomial {
            terms: self.terms.iter().chain(rhs.terms.iter()).cloned().collect(),
        };
        out.canonicalize();
        out
    }
}

impl Add for Signomial {
    type Output = Signomial;
    fn add(self, rhs: Signomial) -> Signomial {
        &self + &rhs
    }
}

impl Sub for &Signomial {
    type Output = Signomial;
    fn sub(self, rhs: &Signomial) -> Signomial {
        self + &(-rhs)
    }
}

impl Sub for Signomial {
    type Output = Signomial;
    fn sub(self, rhs: Signomial) -> Signomial {
        &self - &rhs
    }
}

impl Neg for &Signomial {
    type Output = Signomial;
    fn neg(self) -> Signomial {
        self.scale(-1.0)
    }
}

impl Neg for Signomial {
    type Output = Signomial;
    fn neg(self) -> Signomial {
        -&self
    }
}

impl Mul for &Signomial {
    type Output = Signomial;
    fn mul(self, rhs: &Signomial) -> Signomial {
        let mut terms = Vec::with_capacity(self.terms.len() * rhs.terms.len());
        for a in &self.terms {
            for b in &rhs.terms {
                terms.push(Term {
                    coeff: a.coeff * b.coeff,
                    unit: &a.unit * &b.unit,
                });
            }
        }
        let mut out = Signomial { terms };
        out.canonicalize();
        out
    }
}

impl Mul for Signomial {
    type Output = Signomial;
    fn mul(self, rhs: Signomial) -> Signomial {
        &self * &rhs
    }
}

impl Mul<f64> for Signomial {
    type Output = Signomial;
    fn mul(self, rhs: f64) -> Signomial {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarRegistry;

    fn setup() -> (VarRegistry, Var, Var) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        (reg, x, y)
    }

    #[test]
    fn like_terms_combine_and_cancel() {
        let (_, x, _) = setup();
        let a = Signomial::var(x) * 2.0;
        let b = Signomial::var(x) * 3.0;
        let s = &a + &b;
        assert_eq!(s.num_terms(), 1);
        let cancelled = &s - &(Signomial::var(x) * 5.0);
        assert!(cancelled.is_zero());
    }

    #[test]
    fn product_distributes() {
        let (reg, x, y) = setup();
        // (x + 1)(y - 1) = xy - x + y - 1
        let p = (Signomial::var(x) + Signomial::constant(1.0))
            * (Signomial::var(y) - Signomial::constant(1.0));
        assert_eq!(p.num_terms(), 4);
        let mut pt = reg.assignment();
        pt.set(x, 3.0);
        pt.set(y, 7.0);
        assert_eq!(p.eval(&pt), (3.0 + 1.0) * (7.0 - 1.0));
    }

    #[test]
    fn substitute_rewrites_all_terms() {
        let (reg, x, y) = setup();
        // s = x^2 + 3x - 1; substitute x -> 2y
        let s = Signomial::var(x).pow_i(2) + Signomial::var(x) * 3.0 - Signomial::constant(1.0);
        let sub = s.substitute(x, &Monomial::new(2.0, [(y, 1.0)]));
        let mut pt = reg.assignment();
        pt.set(y, 5.0);
        let xv: f64 = 10.0;
        assert!((sub.eval(&pt) - (xv * xv + 3.0 * xv - 1.0)).abs() < 1e-9);
        assert!(!sub.contains(x));
    }

    #[test]
    fn upper_bound_dominates() {
        let (reg, x, y) = setup();
        let s = Signomial::var(x) * 2.0 + Signomial::var(y) - Signomial::constant(2.0);
        let ub = s.posynomial_upper_bound().unwrap();
        let mut pt = reg.assignment();
        pt.set(x, 1.5);
        pt.set(y, 2.5);
        assert!(ub.eval(&pt) >= s.eval(&pt));
        assert!((ub.eval(&pt) - s.eval(&pt) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn all_negative_has_no_upper_bound() {
        let s = Signomial::constant(-3.0);
        assert!(s.posynomial_upper_bound().is_none());
        assert!(s.to_posynomial().is_none());
    }

    #[test]
    fn render_is_readable() {
        let (reg, x, y) = setup();
        let s = Signomial::var(x) * 2.0 + Signomial::var(y).pow_i(2) - Signomial::constant(1.0);
        assert_eq!(reg.render(&s), "-1 + 2*x + y^2");
        assert_eq!(reg.render(&Signomial::zero()), "0");
    }

    #[test]
    fn render_leading_negative() {
        let (reg, x, _) = setup();
        let s = Signomial::constant(-1.0) + Signomial::var(x);
        // canonical order sorts the constant first
        assert_eq!(reg.render(&s), "-1 + x");
    }

    #[test]
    fn pow_i_matches_repeated_mul() {
        let (reg, x, y) = setup();
        let s = Signomial::var(x) + Signomial::var(y);
        let cube = s.pow_i(3);
        let mut pt = reg.assignment();
        pt.set(x, 2.0);
        pt.set(y, 3.0);
        assert!((cube.eval(&pt) - 125.0).abs() < 1e-9);
        assert_eq!(s.pow_i(0).eval(&pt), 1.0);
    }

    #[test]
    fn mul_monomial_scales_each_term() {
        let (reg, x, y) = setup();
        let s = Signomial::var(x) - Signomial::constant(1.0);
        let m = Monomial::new(3.0, [(y, 2.0)]);
        let p = s.mul_monomial(&m);
        let mut pt = reg.assignment();
        pt.set(x, 4.0);
        pt.set(y, 2.0);
        assert!((p.eval(&pt) - (4.0 - 1.0) * 3.0 * 4.0).abs() < 1e-12);
    }
}
