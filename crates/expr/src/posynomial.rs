//! Posynomials: sums of monomials with positive coefficients.

use crate::{Assignment, Monomial, Signomial, Var};
use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul};

/// A sum of monomials with strictly positive coefficients — the expression
/// class admitted by geometric programs.
///
/// Posynomials are closed under addition, multiplication, division by a
/// monomial, and positive integer powers. The invariant (all coefficients
/// positive, at least one term) is maintained by construction; the general
/// signed arithmetic lives in [`Signomial`].
///
/// # Examples
///
/// ```
/// use thistle_expr::{Monomial, Posynomial, VarRegistry};
/// let mut reg = VarRegistry::new();
/// let x = reg.var("x");
/// let y = reg.var("y");
/// // f = x^2 + 2/(x*y)
/// let f = Posynomial::from_var(x).pow_i(2)
///     + Posynomial::from(Monomial::new(2.0, [(x, -1.0), (y, -1.0)]));
/// let mut p = reg.assignment();
/// p.set(x, 2.0);
/// p.set(y, 0.5);
/// assert_eq!(f.eval(&p), 4.0 + 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Posynomial {
    inner: Signomial,
}

impl Posynomial {
    /// The constant posynomial `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not finite and strictly positive.
    pub fn constant(c: f64) -> Self {
        assert!(
            c.is_finite() && c > 0.0,
            "posynomial constants must be finite and positive, got {c}"
        );
        Posynomial {
            inner: Signomial::constant(c),
        }
    }

    /// The posynomial consisting of the single variable `v`.
    pub fn from_var(v: Var) -> Self {
        Posynomial {
            inner: Signomial::var(v),
        }
    }

    /// The multiplicative identity `1`.
    pub fn one() -> Self {
        Posynomial::constant(1.0)
    }

    /// Builds a posynomial as a sum of monomials.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty (the empty sum is zero, which is not a
    /// posynomial).
    pub fn sum(monomials: impl IntoIterator<Item = Monomial>) -> Self {
        let inner = Signomial::from_terms(monomials.into_iter().map(|m| (1.0, m)).collect());
        assert!(!inner.is_zero(), "a posynomial needs at least one term");
        Posynomial { inner }
    }

    /// Number of monomial terms.
    pub fn num_terms(&self) -> usize {
        self.inner.num_terms()
    }

    /// Iterates over the monomial terms (coefficients folded in).
    ///
    /// This clones every term; hot paths should prefer [`Posynomial::terms`],
    /// which borrows.
    pub fn monomials(&self) -> impl Iterator<Item = Monomial> + '_ {
        self.inner.terms().map(|(c, unit)| unit.scale(c))
    }

    /// Iterates over `(coefficient, unit monomial)` pairs in canonical order
    /// without cloning. The unit monomials have coefficient one; the full
    /// term is `coeff * unit`.
    pub fn terms(&self) -> impl Iterator<Item = (f64, &Monomial)> + '_ {
        self.inner.terms()
    }

    /// If the posynomial is a single monomial, returns it.
    pub fn as_monomial(&self) -> Option<Monomial> {
        if self.num_terms() == 1 {
            self.monomials().next()
        } else {
            None
        }
    }

    /// Evaluates the posynomial at a point.
    pub fn eval(&self, point: &Assignment) -> f64 {
        self.inner.eval(point)
    }

    /// Whether any term mentions `v`.
    pub fn contains(&self, v: Var) -> bool {
        self.inner.contains(v)
    }

    /// Substitutes a monomial for every occurrence of variable `v`.
    ///
    /// Posynomials are closed under this operation because monomial
    /// substitution maps monomials to monomials.
    pub fn substitute(&self, v: Var, replacement: &Monomial) -> Self {
        Posynomial {
            inner: self.inner.substitute(v, replacement),
        }
    }

    /// Raises to a non-negative integer power.
    ///
    /// `pow_i(0)` is the constant one.
    pub fn pow_i(&self, p: u32) -> Self {
        Posynomial {
            inner: self.inner.pow_i(p),
        }
    }

    /// Multiplies every coefficient by a positive constant.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not finite and strictly positive.
    pub fn scale(&self, c: f64) -> Self {
        assert!(
            c.is_finite() && c > 0.0,
            "posynomial scale factors must be positive, got {c}"
        );
        Posynomial {
            inner: self.inner.scale(c),
        }
    }

    /// Converts to the equivalent signomial (always exact).
    pub fn to_signomial(&self) -> Signomial {
        self.inner.clone()
    }

    pub(crate) fn from_signomial_unchecked(inner: Signomial) -> Self {
        debug_assert!(inner.is_posynomial() && !inner.is_zero());
        Posynomial { inner }
    }
}

impl From<Monomial> for Posynomial {
    fn from(m: Monomial) -> Self {
        Posynomial {
            inner: Signomial::from(m),
        }
    }
}

impl Add for &Posynomial {
    type Output = Posynomial;
    fn add(self, rhs: &Posynomial) -> Posynomial {
        Posynomial {
            inner: &self.inner + &rhs.inner,
        }
    }
}

impl Add for Posynomial {
    type Output = Posynomial;
    fn add(self, rhs: Posynomial) -> Posynomial {
        &self + &rhs
    }
}

impl Mul for &Posynomial {
    type Output = Posynomial;
    fn mul(self, rhs: &Posynomial) -> Posynomial {
        Posynomial {
            inner: &self.inner * &rhs.inner,
        }
    }
}

impl Mul for Posynomial {
    type Output = Posynomial;
    fn mul(self, rhs: Posynomial) -> Posynomial {
        &self * &rhs
    }
}

impl Mul<f64> for Posynomial {
    type Output = Posynomial;
    fn mul(self, rhs: f64) -> Posynomial {
        self.scale(rhs)
    }
}

/// Division by a monomial (posynomials are closed under this; division by a
/// general posynomial is not defined).
impl Div<&Monomial> for &Posynomial {
    type Output = Posynomial;
    fn div(self, rhs: &Monomial) -> Posynomial {
        Posynomial {
            inner: self.inner.mul_monomial(&rhs.recip()),
        }
    }
}

impl Div<Monomial> for Posynomial {
    type Output = Posynomial;
    fn div(self, rhs: Monomial) -> Posynomial {
        &self / &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarRegistry;

    fn setup() -> (VarRegistry, Var, Var) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        (reg, x, y)
    }

    #[test]
    fn sum_combines_like_terms() {
        let (_, x, _) = setup();
        let p = Posynomial::sum([Monomial::var(x), Monomial::var(x).scale(2.0)]);
        assert_eq!(p.num_terms(), 1);
        assert_eq!(p.as_monomial().unwrap().coeff(), 3.0);
    }

    #[test]
    fn division_by_monomial() {
        let (reg, x, y) = setup();
        let p = Posynomial::from_var(x) + Posynomial::from_var(y);
        let q = &p / &Monomial::new(2.0, [(x, 1.0)]);
        let mut pt = reg.assignment();
        pt.set(x, 4.0);
        pt.set(y, 8.0);
        assert!((q.eval(&pt) - (4.0 + 8.0) / 8.0).abs() < 1e-12);
    }

    #[test]
    fn as_monomial_only_for_single_terms() {
        let (_, x, y) = setup();
        assert!(Posynomial::from_var(x).as_monomial().is_some());
        let two = Posynomial::from_var(x) + Posynomial::from_var(y);
        assert!(two.as_monomial().is_none());
    }

    #[test]
    fn substitution_keeps_positivity() {
        let (reg, x, y) = setup();
        let p = Posynomial::from_var(x).pow_i(2) + Posynomial::constant(1.0);
        let s = p.substitute(x, &Monomial::new(3.0, [(y, 1.0)]));
        let mut pt = reg.assignment();
        pt.set(y, 2.0);
        assert_eq!(s.eval(&pt), 36.0 + 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn empty_sum_rejected() {
        Posynomial::sum(std::iter::empty::<Monomial>());
    }

    #[test]
    fn pow_zero_is_one() {
        let (_, x, _) = setup();
        let p = Posynomial::from_var(x).pow_i(0);
        assert_eq!(p.eval(&Assignment::ones(1)), 1.0);
    }
}
