//! A from-scratch geometric programming (GP) solver.
//!
//! Thistle's dataflow and co-design optimization problems are Disciplined
//! Geometric Programs: minimize a posynomial subject to posynomial
//! inequalities (`f(x) <= 1`) and monomial equalities (`m(x) = 1`) over
//! strictly positive variables. The paper solves them with CVXPY; this crate
//! implements the equivalent machinery natively:
//!
//! 1. the **log-log transform** `y = log x`, under which monomials become
//!    affine functions and posynomials become log-sum-exp (smooth convex)
//!    functions ([`transform`](TransformedProblem));
//! 2. a **phase-I / phase-II barrier interior-point method** with
//!    equality-constrained Newton steps;
//! 3. the **dense linear algebra** those Newton steps need ([`linalg`]).
//!
//! Problems in this repository are small (tens of variables, tens of
//! constraints, hundreds of monomials), so dense factorizations are the right
//! tool.
//!
//! # Examples
//!
//! Minimize `x + y` subject to `x*y >= 8` (optimum `x = y = sqrt(8)`):
//!
//! ```
//! use thistle_expr::{Monomial, Posynomial, VarRegistry};
//! use thistle_gp::GpProblem;
//!
//! # fn main() -> Result<(), thistle_gp::GpError> {
//! let mut reg = VarRegistry::new();
//! let x = reg.var("x");
//! let y = reg.var("y");
//! let mut prob = GpProblem::new(reg);
//! prob.set_objective(Posynomial::from_var(x) + Posynomial::from_var(y));
//! // x*y >= 8  <=>  8 / (x*y) <= 1
//! prob.add_le(
//!     Posynomial::from(Monomial::new(8.0, [(x, -1.0), (y, -1.0)])),
//!     Monomial::one(),
//! );
//! let sol = prob.solve(&Default::default())?;
//! assert!((sol.objective - 2.0 * 8.0f64.sqrt()).abs() < 1e-4);
//! # Ok(())
//! # }
//! ```

mod batch;
pub mod condensation;
mod deadline;
pub mod linalg;
mod problem;
mod solver;
mod transform;

pub use batch::{content_fingerprint, structural_signature, BatchOutcome, BatchProblem};
pub use condensation::{monomialize, CondensationResult, SignomialProblem};
pub use deadline::Deadline;
pub use problem::{GpProblem, SolveOptions};
pub use solver::{GpError, RecoveryInfo, RecoveryRung, Solution, SolveStatus, WarmInfo};
pub use transform::{LogSumExp, LoweringReuse, LseScratch, TransformedProblem};

#[cfg(test)]
mod known_problems;
