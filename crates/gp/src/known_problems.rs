//! Integration tests against geometric programs with known or
//! independently-computable optima.

use crate::{GpProblem, SolveOptions};
use thistle_expr::{Assignment, Monomial, Posynomial, VarRegistry};

fn default_opts() -> SolveOptions {
    SolveOptions::default()
}

/// AM-GM: min x + y + z subject to xyz >= 1 has optimum 3 at (1,1,1).
#[test]
fn am_gm_three_vars() {
    let mut reg = VarRegistry::new();
    let x = reg.var("x");
    let y = reg.var("y");
    let z = reg.var("z");
    let mut prob = GpProblem::new(reg);
    prob.set_objective(Posynomial::from_var(x) + Posynomial::from_var(y) + Posynomial::from_var(z));
    prob.add_le(
        Posynomial::from(Monomial::new(1.0, [(x, -1.0), (y, -1.0), (z, -1.0)])),
        Monomial::one(),
    );
    let sol = prob.solve(&default_opts()).unwrap();
    assert!((sol.objective - 3.0).abs() < 1e-5, "{}", sol.objective);
    for v in [x, y, z] {
        assert!((sol.assignment.get(v) - 1.0).abs() < 1e-4);
    }
}

/// The classic box-design GP (Boyd et al., "A tutorial on geometric
/// programming"): maximize volume h*w*d subject to wall/floor area limits and
/// aspect-ratio bounds. We solve `min (hwd)^-1` and verify against a dense
/// grid search.
#[test]
fn boyd_box_design_beats_grid_search() {
    let a_wall = 200.0;
    let a_flr = 60.0;
    let (alpha, beta) = (0.5, 2.0);
    let (gamma, delta) = (0.5, 2.0);

    let mut reg = VarRegistry::new();
    let h = reg.var("h");
    let w = reg.var("w");
    let d = reg.var("d");
    let mut prob = GpProblem::new(reg);
    prob.set_objective(Posynomial::from(Monomial::new(
        1.0,
        [(h, -1.0), (w, -1.0), (d, -1.0)],
    )));
    // 2(hw + hd) <= a_wall
    prob.add_le(
        Posynomial::from(Monomial::new(2.0, [(h, 1.0), (w, 1.0)]))
            + Posynomial::from(Monomial::new(2.0, [(h, 1.0), (d, 1.0)])),
        Monomial::constant(a_wall),
    );
    // w d <= a_flr
    prob.add_le(
        Posynomial::from(Monomial::new(1.0, [(w, 1.0), (d, 1.0)])),
        Monomial::constant(a_flr),
    );
    // alpha <= h/w <= beta
    prob.add_le(
        Posynomial::from(Monomial::new(alpha, [(h, -1.0), (w, 1.0)])),
        Monomial::one(),
    );
    prob.add_le(
        Posynomial::from(Monomial::new(1.0 / beta, [(h, 1.0), (w, -1.0)])),
        Monomial::one(),
    );
    // gamma <= d/w <= delta
    prob.add_le(
        Posynomial::from(Monomial::new(gamma, [(d, -1.0), (w, 1.0)])),
        Monomial::one(),
    );
    prob.add_le(
        Posynomial::from(Monomial::new(1.0 / delta, [(d, 1.0), (w, -1.0)])),
        Monomial::one(),
    );

    let sol = prob.solve(&default_opts()).unwrap();
    let volume = 1.0 / sol.objective;
    assert!(prob.constraint_violation(&sol.assignment) < 1e-6);

    // Dense grid search for the best feasible volume.
    let mut best_grid = 0.0f64;
    let steps = 60;
    for hi in 1..=steps {
        for wi in 1..=steps {
            for di in 1..=steps {
                let (hh, ww, dd) = (
                    hi as f64 * 20.0 / steps as f64,
                    wi as f64 * 20.0 / steps as f64,
                    di as f64 * 20.0 / steps as f64,
                );
                let ok = 2.0 * (hh * ww + hh * dd) <= a_wall
                    && ww * dd <= a_flr
                    && hh / ww >= alpha
                    && hh / ww <= beta
                    && dd / ww >= gamma
                    && dd / ww <= delta;
                if ok {
                    best_grid = best_grid.max(hh * ww * dd);
                }
            }
        }
    }
    assert!(
        volume >= best_grid * 0.999,
        "GP volume {volume} must dominate grid search {best_grid}"
    );
}

/// Matrix-multiplication SRAM tiling (Eq. 1 of the paper): minimize DRAM
/// traffic `Ni*Nk + Ni*Nj*Nk/Si + Ni*Nj*Nk/Sk` subject to the SRAM capacity
/// constraint `Si*Sj + Si*Sk + Sj*Sk <= S`. Verified against grid search
/// over tile sizes.
#[test]
fn matmul_sram_tiling_traffic() {
    let (ni, nj, nk) = (512.0, 512.0, 512.0);
    let cap = 4096.0;

    let mut reg = VarRegistry::new();
    let si = reg.var("Si");
    let sj = reg.var("Sj");
    let sk = reg.var("Sk");
    let mut prob = GpProblem::new(reg);
    let traffic = Posynomial::constant(ni * nk)
        + Posynomial::from(Monomial::new(ni * nj * nk, [(si, -1.0)]))
        + Posynomial::from(Monomial::new(ni * nj * nk, [(sk, -1.0)]));
    prob.set_objective(traffic.clone());
    prob.add_le(
        Posynomial::from(Monomial::new(1.0, [(si, 1.0), (sj, 1.0)]))
            + Posynomial::from(Monomial::new(1.0, [(si, 1.0), (sk, 1.0)]))
            + Posynomial::from(Monomial::new(1.0, [(sj, 1.0), (sk, 1.0)])),
        Monomial::constant(cap),
    );
    for v in [si, sj, sk] {
        prob.add_bounds(v, 1.0, 512.0);
    }
    let sol = prob.solve(&default_opts()).unwrap();
    assert!(prob.constraint_violation(&sol.assignment) < 1e-6);

    // Grid search (Sj wants to be as small as possible — scan it too).
    let mut best = f64::INFINITY;
    for siv in 1..=128 {
        for sjv in 1..=8 {
            for skv in 1..=128 {
                let (a, b, c) = (siv as f64, sjv as f64, skv as f64);
                if a * b + a * c + b * c <= cap {
                    let t = ni * nk + ni * nj * nk / a + ni * nj * nk / c;
                    best = best.min(t);
                }
            }
        }
    }
    assert!(
        sol.objective <= best * 1.001,
        "GP {} must be at least as good as grid {best}",
        sol.objective
    );
    // Symmetric problem: Si ~ Sk at the optimum.
    let (a, c) = (sol.assignment.get(si), sol.assignment.get(sk));
    assert!((a - c).abs() / a < 1e-3, "Si={a} Sk={c}");
}

/// Equality constraints interact correctly with inequalities:
/// min x + y s.t. x*y = 64, x <= 4  =>  x = 4, y = 16.
#[test]
fn equality_with_active_inequality() {
    let mut reg = VarRegistry::new();
    let x = reg.var("x");
    let y = reg.var("y");
    let mut prob = GpProblem::new(reg);
    prob.set_objective(Posynomial::from_var(x) + Posynomial::from_var(y));
    prob.add_eq(
        Monomial::new(1.0, [(x, 1.0), (y, 1.0)]),
        Monomial::constant(64.0),
    );
    prob.add_le(
        Posynomial::from(Monomial::new(0.25, [(x, 1.0)])),
        Monomial::one(),
    );
    let sol = prob.solve(&default_opts()).unwrap();
    assert!((sol.assignment.get(x) - 4.0).abs() < 1e-3);
    assert!((sol.assignment.get(y) - 16.0).abs() < 1e-2);
}

/// Fractional exponents (the co-design sqrt(S) energy term) are handled.
#[test]
fn fractional_exponents() {
    // min s^0.5 + 100 / s  =>  d/ds = 0.5 s^-0.5 - 100 s^-2 = 0
    // => s^1.5 = 200 => s = 200^(2/3).
    let mut reg = VarRegistry::new();
    let s = reg.var("s");
    let mut prob = GpProblem::new(reg);
    prob.set_objective(
        Posynomial::from(Monomial::new(1.0, [(s, 0.5)]))
            + Posynomial::from(Monomial::new(100.0, [(s, -1.0)])),
    );
    let sol = prob.solve(&default_opts()).unwrap();
    let expected = 200.0f64.powf(2.0 / 3.0);
    assert!(
        (sol.assignment.get(s) - expected).abs() / expected < 1e-4,
        "{} vs {expected}",
        sol.assignment.get(s)
    );
}

/// The solver's answer is never beaten by random feasible sampling.
#[test]
fn random_problems_dominate_random_feasible_points() {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(42);

    for trial in 0..20 {
        let mut reg = VarRegistry::new();
        let n = rng.gen_range(2..5);
        let vars: Vec<_> = (0..n).map(|i| reg.var(&format!("x{i}"))).collect();

        // Objective: mixture of positive and negative exponents so it is
        // bounded below on the box.
        let mut obj = Posynomial::constant(1e-6);
        for _ in 0..rng.gen_range(2..5) {
            let m = Monomial::new(
                rng.gen_range(0.1..5.0),
                vars.iter()
                    .map(|&v| (v, rng.gen_range(-2i32..=2) as f64))
                    .collect::<Vec<_>>(),
            );
            obj = obj + Posynomial::from(m);
        }
        let mut prob = GpProblem::new(reg);
        prob.set_objective(obj.clone());
        for &v in &vars {
            prob.add_bounds(v, 0.5, 20.0);
        }
        let sol = match prob.solve(&default_opts()) {
            Ok(s) => s,
            Err(e) => panic!("trial {trial} failed: {e}"),
        };
        assert!(prob.constraint_violation(&sol.assignment) < 1e-6);

        for _ in 0..300 {
            let point: Assignment = vars
                .iter()
                .map(|&v| (v, rng.gen_range(0.5..20.0)))
                .collect();
            assert!(
                obj.eval(&point) >= sol.objective * (1.0 - 1e-6),
                "trial {trial}: sampled point beats solver"
            );
        }
    }
}
