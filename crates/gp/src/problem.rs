//! User-facing geometric program builder.

use crate::deadline::Deadline;
use crate::solver::{
    solve_transformed, solve_transformed_warm, BarrierOptions, GpError, Solution, WarmInfo,
};
use crate::transform::TransformedProblem;
use thistle_expr::{ArenaStats, Assignment, Monomial, Posynomial, Var, VarRegistry};

/// Solver configuration exposed to callers.
///
/// The defaults converge to ~1e-8 relative accuracy on the problems in this
/// workspace; loosen `gap_tolerance` for speed when the result only seeds an
/// integerization search.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Target bound on the barrier duality gap (`m / t`).
    pub gap_tolerance: f64,
    /// Newton decrement threshold per centering step.
    pub newton_tolerance: f64,
    /// Cap on Newton iterations within one centering step.
    pub max_newton_iterations: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            gap_tolerance: 1e-8,
            newton_tolerance: 1e-10,
            max_newton_iterations: 80,
        }
    }
}

/// The [`BarrierOptions`] a cold [`GpProblem::solve`] runs with for the given
/// caller-facing options. Shared with the batched engine so its per-member
/// scalar fallbacks (and the sweep's confirmation re-solves) are bit-identical
/// to the sequential path.
pub(crate) fn cold_barrier_options(options: &SolveOptions) -> BarrierOptions {
    BarrierOptions {
        gap_tol: options.gap_tolerance,
        newton_tol: options.newton_tolerance,
        max_newton_per_center: options.max_newton_iterations,
        ..BarrierOptions::default()
    }
}

/// A geometric program in standard form.
///
/// * objective: minimize a [`Posynomial`];
/// * inequality constraints: `posynomial <= monomial`
///   (stored as `posynomial / monomial <= 1`);
/// * equality constraints: `monomial == monomial`;
/// * optional box bounds on individual variables.
///
/// # Examples
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct GpProblem {
    registry: VarRegistry,
    objective: Option<Posynomial>,
    inequalities: Vec<Posynomial>,
    equalities: Vec<Monomial>,
    /// Hash-consing counters from the arena(s) that built this problem's
    /// expressions, stamped by the generator. Reported on the
    /// `expr_compile` trace span and in solve reports.
    arena_stats: Option<ArenaStats>,
}

impl GpProblem {
    /// Creates an empty problem over the variables of `registry`.
    pub fn new(registry: VarRegistry) -> Self {
        GpProblem {
            registry,
            objective: None,
            inequalities: Vec::new(),
            equalities: Vec::new(),
            arena_stats: None,
        }
    }

    /// Records the [`ArenaStats`] accumulated while this problem's
    /// expressions were built (the generator stamps the delta of
    /// [`thistle_expr::thread_arena_stats`] around the model build).
    pub fn set_arena_stats(&mut self, stats: ArenaStats) -> &mut Self {
        self.arena_stats = Some(stats);
        self
    }

    /// Arena hash-consing counters from this problem's construction, if the
    /// builder recorded them.
    pub fn arena_stats(&self) -> Option<ArenaStats> {
        self.arena_stats
    }

    /// The variable registry this problem was built over.
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// Sets the posynomial objective to minimize.
    pub fn set_objective(&mut self, objective: Posynomial) -> &mut Self {
        self.objective = Some(objective);
        self
    }

    /// Adds the constraint `lhs <= rhs` where `rhs` is a monomial.
    pub fn add_le(&mut self, lhs: Posynomial, rhs: Monomial) -> &mut Self {
        self.inequalities.push(&lhs / &rhs);
        self
    }

    /// Adds the constraint `lhs == rhs` between two monomials.
    pub fn add_eq(&mut self, lhs: Monomial, rhs: Monomial) -> &mut Self {
        self.equalities.push(&lhs / &rhs);
        self
    }

    /// Constrains `lo <= v <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo` or `hi` is not positive and finite, or `lo > hi`.
    pub fn add_bounds(&mut self, v: Var, lo: f64, hi: f64) -> &mut Self {
        assert!(
            lo > 0.0 && hi.is_finite() && lo <= hi,
            "invalid bounds [{lo}, {hi}]"
        );
        // lo / v <= 1 and v / hi <= 1.
        self.inequalities
            .push(Posynomial::from(Monomial::new(lo, [(v, -1.0)])));
        self.inequalities
            .push(Posynomial::from(Monomial::new(1.0 / hi, [(v, 1.0)])));
        self
    }

    /// The objective posynomial, if one has been set.
    pub fn objective(&self) -> Option<&Posynomial> {
        self.objective.as_ref()
    }

    /// The inequality posynomials, each meaning `g(x) <= 1` (bounds
    /// included).
    pub fn inequalities(&self) -> &[Posynomial] {
        &self.inequalities
    }

    /// Number of inequality constraints (including bounds).
    pub fn num_inequalities(&self) -> usize {
        self.inequalities.len()
    }

    /// Number of monomial equality constraints.
    pub fn num_equalities(&self) -> usize {
        self.equalities.len()
    }

    /// The monomial equality constraints, each meaning `m(x) = 1`.
    pub fn equalities(&self) -> &[Monomial] {
        &self.equalities
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`GpError::InvalidProblem`] if no objective has been set;
    /// * [`GpError::Infeasible`] if phase I certifies infeasibility;
    /// * [`GpError::NumericalFailure`] if the interior-point iteration breaks
    ///   down (ill-conditioned or unbounded problems).
    pub fn solve(&self, options: &SolveOptions) -> Result<Solution, GpError> {
        self.solve_with_ctx(
            options,
            &Deadline::none(),
            &thistle_obs::TraceCtx::disabled(),
        )
    }

    /// [`GpProblem::solve`] with trace context: the symbolic-to-CSR lowering
    /// is timed under an `"expr_compile"` span so compile cost shows up
    /// separately from the barrier iteration in stage histograms.
    fn solve_with_ctx(
        &self,
        options: &SolveOptions,
        deadline: &Deadline,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<Solution, GpError> {
        let objective = self
            .objective
            .as_ref()
            .ok_or_else(|| GpError::InvalidProblem("no objective set".into()))?;
        let n = self.registry.len();
        let tp = {
            let mut span = ctx.span("expr_compile");
            let tp = TransformedProblem::new(n, objective, &self.inequalities, &self.equalities);
            if span.enabled() {
                span.set("vars", n);
                span.set("inequalities", self.inequalities.len());
                if let Some(st) = self.arena_stats {
                    span.set("arena_intern_hits", st.intern_hits);
                    span.set("arena_intern_misses", st.intern_misses);
                    span.set("arena_mul_hits", st.mul_hits);
                    span.set("arena_mul_misses", st.mul_misses);
                    span.set("arena_subst_hits", st.subst_hits);
                    span.set("arena_subst_misses", st.subst_misses);
                    span.set("arena_intern_hit_rate", st.intern_hit_rate());
                }
            }
            tp
        };
        let barrier_opts = cold_barrier_options(options);
        let raw = solve_transformed(&tp, &barrier_opts, deadline)?;
        let xs = tp.to_gp_point(&raw.y);
        let assignment = Assignment::from_values(xs);
        let objective_value = objective.eval(&assignment);
        Ok(Solution {
            assignment,
            objective: objective_value,
            status: raw.status,
            newton_iterations: raw.newton_iterations,
            newton_per_center: raw.newton_per_center,
            gap_trajectory: raw.gap_trajectory,
            recovery: raw.recovery,
            warm: WarmInfo::default(),
        })
    }

    /// Solves this program warm-started from `start` — typically the
    /// optimum of a structurally identical `prior` problem whose
    /// coefficients differ (a near-miss: same workload shape class,
    /// different batch or bounds).
    ///
    /// Two reuse mechanisms stack:
    ///
    /// 1. **Patched lowering** — the symbolic-to-CSR lowering copies
    ///    `prior`'s exponent rows wherever the exponent pattern is
    ///    unchanged, re-lowering only the rows that differ (counted in the
    ///    returned [`WarmInfo`]).
    /// 2. **Warm barrier start** — `ln(start)` is projected onto the new
    ///    equality manifold; phase I is skipped when the projected point is
    ///    already strictly feasible, and the barrier opens at an elevated
    ///    `t`, skipping the outer iterations a near-optimal start does not
    ///    need.
    ///
    /// The problem is convex, so the warm path converges to the same
    /// optimum as [`GpProblem::solve`] at the same gap tolerance; on any
    /// numerical trouble it silently falls back to the cold recovery
    /// ladder ([`Solution::warm`] records which path produced the result).
    pub fn solve_warm(
        &self,
        options: &SolveOptions,
        prior: &GpProblem,
        start: &Assignment,
        deadline: &Deadline,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<Solution, GpError> {
        let objective = self
            .objective
            .as_ref()
            .ok_or_else(|| GpError::InvalidProblem("no objective set".into()))?;
        let prior_objective = prior
            .objective
            .as_ref()
            .ok_or_else(|| GpError::InvalidProblem("prior problem has no objective".into()))?;
        let n = self.registry.len();
        let (tp, reuse) = {
            let mut span = ctx.span("expr_compile");
            let tp_prior = TransformedProblem::new(
                prior.registry.len(),
                prior_objective,
                &prior.inequalities,
                &prior.equalities,
            );
            let (tp, reuse) = TransformedProblem::new_patched(
                n,
                objective,
                &self.inequalities,
                &self.equalities,
                &tp_prior,
            );
            if span.enabled() {
                span.set("vars", n);
                span.set("inequalities", self.inequalities.len());
                span.set("rows_reused", reuse.rows_reused as usize);
                span.set("rows_relowered", reuse.rows_relowered as usize);
            }
            (tp, reuse)
        };
        let barrier_opts = cold_barrier_options(options);
        let x0: Vec<f64> = (0..n).map(|i| start.get(Var::from_index(i))).collect();
        let (raw, warm_used) = solve_transformed_warm(&tp, &barrier_opts, deadline, &x0)?;
        let xs = tp.to_gp_point(&raw.y);
        let assignment = Assignment::from_values(xs);
        let objective_value = objective.eval(&assignment);
        Ok(Solution {
            assignment,
            objective: objective_value,
            status: raw.status,
            newton_iterations: raw.newton_iterations,
            newton_per_center: raw.newton_per_center,
            gap_trajectory: raw.gap_trajectory,
            recovery: raw.recovery,
            warm: WarmInfo {
                warm_started: warm_used,
                reuse,
            },
        })
    }

    /// [`GpProblem::solve`] under a `"barrier_solve"` trace span carrying the
    /// problem size, convergence status, Newton iteration count, and the
    /// barrier duality-gap trajectory.
    pub fn solve_traced(
        &self,
        options: &SolveOptions,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<Solution, GpError> {
        self.solve_cancellable(options, &Deadline::none(), ctx)
    }

    /// [`GpProblem::solve_traced`] with cooperative cancellation: the
    /// barrier loop polls `deadline` every Newton iteration and returns
    /// [`GpError::Cancelled`] once it expires, so an abandoned solve frees
    /// its thread within one iteration.
    pub fn solve_cancellable(
        &self,
        options: &SolveOptions,
        deadline: &Deadline,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<Solution, GpError> {
        let mut span = ctx.span("barrier_solve");
        if span.enabled() {
            span.set("vars", self.registry.len());
            span.set("inequalities", self.inequalities.len());
            span.set("equalities", self.equalities.len());
        }
        let result = self.solve_with_ctx(options, deadline, ctx);
        if span.enabled() {
            match &result {
                Ok(sol) => {
                    span.set("status", sol.status.to_string());
                    span.set("newton_iterations", sol.newton_iterations);
                    span.set("centering_steps", sol.newton_per_center.len());
                    span.set("objective", sol.objective);
                    span.set("gap_trajectory", sol.gap_trajectory.clone());
                    if let Some(rung) = sol.recovery.recovered_by {
                        span.set("recovered_by", rung.to_string());
                        span.set("recovery_attempts", sol.recovery.attempts as usize);
                    }
                }
                Err(e) => span.set("status", format!("error: {e}")),
            }
        }
        result
    }

    /// Maximum relative violation of this problem's constraints at `point`
    /// (0 means feasible). Useful for validating integerized solutions.
    pub fn constraint_violation(&self, point: &Assignment) -> f64 {
        let mut worst: f64 = 0.0;
        for g in &self.inequalities {
            worst = worst.max(g.eval(point) - 1.0);
        }
        for m in &self.equalities {
            worst = worst.max((m.eval(point) - 1.0).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_objective_is_invalid() {
        let reg = VarRegistry::new();
        let prob = GpProblem::new(reg);
        let err = prob.solve(&SolveOptions::default()).unwrap_err();
        assert!(matches!(err, GpError::InvalidProblem(_)));
    }

    #[test]
    fn bounds_become_two_inequalities() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let mut prob = GpProblem::new(reg);
        prob.add_bounds(x, 2.0, 8.0);
        assert_eq!(prob.num_inequalities(), 2);
    }

    #[test]
    fn bounds_clip_the_optimum() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let mut prob = GpProblem::new(reg);
        // Unconstrained optimum of x + 1/x is 1; bounds force x >= 3.
        prob.set_objective(
            Posynomial::from_var(x) + Posynomial::from(Monomial::new(1.0, [(x, -1.0)])),
        );
        prob.add_bounds(x, 3.0, 100.0);
        let sol = prob.solve(&SolveOptions::default()).unwrap();
        assert!((sol.assignment.get(x) - 3.0).abs() < 1e-4);
        assert!(prob.constraint_violation(&sol.assignment) < 1e-6);
    }

    /// min x + y s.t. x*y >= target, with box bounds on both variables.
    fn bounded_problem(target: f64) -> (GpProblem, Var, Var) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut prob = GpProblem::new(reg);
        prob.set_objective(Posynomial::from_var(x) + Posynomial::from_var(y));
        prob.add_le(
            Posynomial::from(Monomial::new(target, [(x, -1.0), (y, -1.0)])),
            Monomial::one(),
        );
        prob.add_bounds(x, 0.1, 100.0);
        prob.add_bounds(y, 0.1, 100.0);
        (prob, x, y)
    }

    #[test]
    fn warm_start_matches_cold_with_fewer_newton_iterations() {
        // Near-miss scenario: problem B differs from A only in the
        // constraint coefficient (16 -> 18). Warm-start B from A's optimum
        // and compare against B's cold solve.
        let opts = SolveOptions {
            gap_tolerance: 1e-11,
            ..SolveOptions::default()
        };
        let (prior, _, _) = bounded_problem(16.0);
        let donor = prior.solve(&opts).unwrap();
        let (near, _, _) = bounded_problem(18.0);
        let cold = near.solve(&opts).unwrap();
        let warm = near
            .solve_warm(
                &opts,
                &prior,
                &donor.assignment,
                &Deadline::none(),
                &thistle_obs::TraceCtx::disabled(),
            )
            .unwrap();
        assert!(warm.warm.warm_started, "warm path should engage");
        // Every CSR row is structurally unchanged between A and B.
        assert!(warm.warm.reuse.rows_reused > 0);
        assert_eq!(warm.warm.reuse.rows_relowered, 0);
        // Same optimum (convexity), within 1e-9 relative.
        let scale = 1.0 + cold.objective.abs();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-9 * scale,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        assert!(
            warm.newton_iterations < cold.newton_iterations,
            "warm {} >= cold {}",
            warm.newton_iterations,
            cold.newton_iterations
        );
        assert!(near.constraint_violation(&warm.assignment) < 1e-6);
    }

    #[test]
    fn warm_start_from_bad_point_falls_back_to_cold() {
        let opts = SolveOptions::default();
        let (prior, _, _) = bounded_problem(16.0);
        let (near, _, _) = bounded_problem(18.0);
        // A start point far outside the feasible region (violates x <= 100).
        let mut start = Assignment::ones(2);
        start.set(Var::from_index(0), 1e6);
        start.set(Var::from_index(1), 1e6);
        let cold = near.solve(&opts).unwrap();
        let warm = near
            .solve_warm(
                &opts,
                &prior,
                &start,
                &Deadline::none(),
                &thistle_obs::TraceCtx::disabled(),
            )
            .unwrap();
        // Whether phase I rescued it or the cold ladder did, the optimum is
        // the same.
        let scale = 1.0 + cold.objective.abs();
        assert!((warm.objective - cold.objective).abs() < 1e-6 * scale);
    }

    #[test]
    fn violation_detects_bad_points() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let mut prob = GpProblem::new(reg);
        prob.set_objective(Posynomial::from_var(x));
        prob.add_bounds(x, 1.0, 2.0);
        let mut bad = Assignment::ones(1);
        bad.set(x, 4.0);
        assert!(prob.constraint_violation(&bad) > 0.9);
    }
}
