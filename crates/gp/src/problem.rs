//! User-facing geometric program builder.

use crate::deadline::Deadline;
use crate::solver::{solve_transformed, BarrierOptions, GpError, Solution};
use crate::transform::TransformedProblem;
use thistle_expr::{ArenaStats, Assignment, Monomial, Posynomial, Var, VarRegistry};

/// Solver configuration exposed to callers.
///
/// The defaults converge to ~1e-8 relative accuracy on the problems in this
/// workspace; loosen `gap_tolerance` for speed when the result only seeds an
/// integerization search.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Target bound on the barrier duality gap (`m / t`).
    pub gap_tolerance: f64,
    /// Newton decrement threshold per centering step.
    pub newton_tolerance: f64,
    /// Cap on Newton iterations within one centering step.
    pub max_newton_iterations: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            gap_tolerance: 1e-8,
            newton_tolerance: 1e-10,
            max_newton_iterations: 80,
        }
    }
}

/// A geometric program in standard form.
///
/// * objective: minimize a [`Posynomial`];
/// * inequality constraints: `posynomial <= monomial`
///   (stored as `posynomial / monomial <= 1`);
/// * equality constraints: `monomial == monomial`;
/// * optional box bounds on individual variables.
///
/// # Examples
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct GpProblem {
    registry: VarRegistry,
    objective: Option<Posynomial>,
    inequalities: Vec<Posynomial>,
    equalities: Vec<Monomial>,
    /// Hash-consing counters from the arena(s) that built this problem's
    /// expressions, stamped by the generator. Reported on the
    /// `expr_compile` trace span and in solve reports.
    arena_stats: Option<ArenaStats>,
}

impl GpProblem {
    /// Creates an empty problem over the variables of `registry`.
    pub fn new(registry: VarRegistry) -> Self {
        GpProblem {
            registry,
            objective: None,
            inequalities: Vec::new(),
            equalities: Vec::new(),
            arena_stats: None,
        }
    }

    /// Records the [`ArenaStats`] accumulated while this problem's
    /// expressions were built (the generator stamps the delta of
    /// [`thistle_expr::thread_arena_stats`] around the model build).
    pub fn set_arena_stats(&mut self, stats: ArenaStats) -> &mut Self {
        self.arena_stats = Some(stats);
        self
    }

    /// Arena hash-consing counters from this problem's construction, if the
    /// builder recorded them.
    pub fn arena_stats(&self) -> Option<ArenaStats> {
        self.arena_stats
    }

    /// The variable registry this problem was built over.
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// Sets the posynomial objective to minimize.
    pub fn set_objective(&mut self, objective: Posynomial) -> &mut Self {
        self.objective = Some(objective);
        self
    }

    /// Adds the constraint `lhs <= rhs` where `rhs` is a monomial.
    pub fn add_le(&mut self, lhs: Posynomial, rhs: Monomial) -> &mut Self {
        self.inequalities.push(&lhs / &rhs);
        self
    }

    /// Adds the constraint `lhs == rhs` between two monomials.
    pub fn add_eq(&mut self, lhs: Monomial, rhs: Monomial) -> &mut Self {
        self.equalities.push(&lhs / &rhs);
        self
    }

    /// Constrains `lo <= v <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo` or `hi` is not positive and finite, or `lo > hi`.
    pub fn add_bounds(&mut self, v: Var, lo: f64, hi: f64) -> &mut Self {
        assert!(
            lo > 0.0 && hi.is_finite() && lo <= hi,
            "invalid bounds [{lo}, {hi}]"
        );
        // lo / v <= 1 and v / hi <= 1.
        self.inequalities
            .push(Posynomial::from(Monomial::new(lo, [(v, -1.0)])));
        self.inequalities
            .push(Posynomial::from(Monomial::new(1.0 / hi, [(v, 1.0)])));
        self
    }

    /// The objective posynomial, if one has been set.
    pub fn objective(&self) -> Option<&Posynomial> {
        self.objective.as_ref()
    }

    /// The inequality posynomials, each meaning `g(x) <= 1` (bounds
    /// included).
    pub fn inequalities(&self) -> &[Posynomial] {
        &self.inequalities
    }

    /// Number of inequality constraints (including bounds).
    pub fn num_inequalities(&self) -> usize {
        self.inequalities.len()
    }

    /// Number of monomial equality constraints.
    pub fn num_equalities(&self) -> usize {
        self.equalities.len()
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`GpError::InvalidProblem`] if no objective has been set;
    /// * [`GpError::Infeasible`] if phase I certifies infeasibility;
    /// * [`GpError::NumericalFailure`] if the interior-point iteration breaks
    ///   down (ill-conditioned or unbounded problems).
    pub fn solve(&self, options: &SolveOptions) -> Result<Solution, GpError> {
        self.solve_with_ctx(
            options,
            &Deadline::none(),
            &thistle_obs::TraceCtx::disabled(),
        )
    }

    /// [`GpProblem::solve`] with trace context: the symbolic-to-CSR lowering
    /// is timed under an `"expr_compile"` span so compile cost shows up
    /// separately from the barrier iteration in stage histograms.
    fn solve_with_ctx(
        &self,
        options: &SolveOptions,
        deadline: &Deadline,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<Solution, GpError> {
        let objective = self
            .objective
            .as_ref()
            .ok_or_else(|| GpError::InvalidProblem("no objective set".into()))?;
        let n = self.registry.len();
        let tp = {
            let mut span = ctx.span("expr_compile");
            let tp = TransformedProblem::new(n, objective, &self.inequalities, &self.equalities);
            if span.enabled() {
                span.set("vars", n);
                span.set("inequalities", self.inequalities.len());
                if let Some(st) = self.arena_stats {
                    span.set("arena_intern_hits", st.intern_hits);
                    span.set("arena_intern_misses", st.intern_misses);
                    span.set("arena_mul_hits", st.mul_hits);
                    span.set("arena_mul_misses", st.mul_misses);
                    span.set("arena_subst_hits", st.subst_hits);
                    span.set("arena_subst_misses", st.subst_misses);
                    span.set("arena_intern_hit_rate", st.intern_hit_rate());
                }
            }
            tp
        };
        let barrier_opts = BarrierOptions {
            gap_tol: options.gap_tolerance,
            newton_tol: options.newton_tolerance,
            max_newton_per_center: options.max_newton_iterations,
            ..BarrierOptions::default()
        };
        let raw = solve_transformed(&tp, &barrier_opts, deadline)?;
        let xs = tp.to_gp_point(&raw.y);
        let assignment = Assignment::from_values(xs);
        let objective_value = objective.eval(&assignment);
        Ok(Solution {
            assignment,
            objective: objective_value,
            status: raw.status,
            newton_iterations: raw.newton_iterations,
            newton_per_center: raw.newton_per_center,
            gap_trajectory: raw.gap_trajectory,
            recovery: raw.recovery,
        })
    }

    /// [`GpProblem::solve`] under a `"barrier_solve"` trace span carrying the
    /// problem size, convergence status, Newton iteration count, and the
    /// barrier duality-gap trajectory.
    pub fn solve_traced(
        &self,
        options: &SolveOptions,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<Solution, GpError> {
        self.solve_cancellable(options, &Deadline::none(), ctx)
    }

    /// [`GpProblem::solve_traced`] with cooperative cancellation: the
    /// barrier loop polls `deadline` every Newton iteration and returns
    /// [`GpError::Cancelled`] once it expires, so an abandoned solve frees
    /// its thread within one iteration.
    pub fn solve_cancellable(
        &self,
        options: &SolveOptions,
        deadline: &Deadline,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<Solution, GpError> {
        let mut span = ctx.span("barrier_solve");
        if span.enabled() {
            span.set("vars", self.registry.len());
            span.set("inequalities", self.inequalities.len());
            span.set("equalities", self.equalities.len());
        }
        let result = self.solve_with_ctx(options, deadline, ctx);
        if span.enabled() {
            match &result {
                Ok(sol) => {
                    span.set("status", sol.status.to_string());
                    span.set("newton_iterations", sol.newton_iterations);
                    span.set("centering_steps", sol.newton_per_center.len());
                    span.set("objective", sol.objective);
                    span.set("gap_trajectory", sol.gap_trajectory.clone());
                    if let Some(rung) = sol.recovery.recovered_by {
                        span.set("recovered_by", rung.to_string());
                        span.set("recovery_attempts", sol.recovery.attempts as usize);
                    }
                }
                Err(e) => span.set("status", format!("error: {e}")),
            }
        }
        result
    }

    /// Maximum relative violation of this problem's constraints at `point`
    /// (0 means feasible). Useful for validating integerized solutions.
    pub fn constraint_violation(&self, point: &Assignment) -> f64 {
        let mut worst: f64 = 0.0;
        for g in &self.inequalities {
            worst = worst.max(g.eval(point) - 1.0);
        }
        for m in &self.equalities {
            worst = worst.max((m.eval(point) - 1.0).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_objective_is_invalid() {
        let reg = VarRegistry::new();
        let prob = GpProblem::new(reg);
        let err = prob.solve(&SolveOptions::default()).unwrap_err();
        assert!(matches!(err, GpError::InvalidProblem(_)));
    }

    #[test]
    fn bounds_become_two_inequalities() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let mut prob = GpProblem::new(reg);
        prob.add_bounds(x, 2.0, 8.0);
        assert_eq!(prob.num_inequalities(), 2);
    }

    #[test]
    fn bounds_clip_the_optimum() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let mut prob = GpProblem::new(reg);
        // Unconstrained optimum of x + 1/x is 1; bounds force x >= 3.
        prob.set_objective(
            Posynomial::from_var(x) + Posynomial::from(Monomial::new(1.0, [(x, -1.0)])),
        );
        prob.add_bounds(x, 3.0, 100.0);
        let sol = prob.solve(&SolveOptions::default()).unwrap();
        assert!((sol.assignment.get(x) - 3.0).abs() < 1e-4);
        assert!(prob.constraint_violation(&sol.assignment) < 1e-6);
    }

    #[test]
    fn violation_detects_bad_points() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let mut prob = GpProblem::new(reg);
        prob.set_objective(Posynomial::from_var(x));
        prob.add_bounds(x, 1.0, 2.0);
        let mut bad = Assignment::ones(1);
        bad.set(x, 4.0);
        assert!(prob.constraint_violation(&bad) > 0.9);
    }
}
