//! Barrier interior-point solver for log-transformed geometric programs.
//!
//! The solver minimizes `F0(y)` subject to `Fi(y) <= 0` and `A y = b`, where
//! every `F` is a [`LogSumExp`] (hence smooth and convex):
//!
//! * **Phase I** finds a strictly feasible point by solving
//!   `min s  s.t.  Fi(y) - s <= 0, A y = b`. In log-space `Fi(y) - s` is
//!   again a log-sum-exp over the extended variable vector `(y, s)` — each
//!   exponential row simply gains a `-1` coefficient on `s` — so phase I
//!   reuses the phase-II machinery verbatim.
//! * **Phase II** runs the standard log-barrier method: repeatedly center
//!   `t F0(y) - sum_i log(-Fi(y))` with equality-constrained Newton steps and
//!   increase `t` until the duality gap bound `m / t` is below tolerance.

use crate::deadline::Deadline;
use crate::linalg::{axpy, dot, norm2, Matrix};
use crate::transform::{LogSumExp, LseScratch, TransformedProblem};
use std::fmt;
use thistle_expr::Assignment;

/// Why a [`Solution`] should (or should not) be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// Converged to the requested duality-gap tolerance.
    Optimal,
    /// Iteration limits were hit before full convergence; the returned point
    /// is feasible but may be slightly suboptimal.
    Inaccurate,
    /// The solve only succeeded on the relaxed-tolerance rung of the
    /// recovery ladder: the point is feasible but its optimality gap is
    /// orders of magnitude looser than requested.
    Degraded,
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveStatus::Optimal => write!(f, "optimal"),
            SolveStatus::Inaccurate => write!(f, "inaccurate"),
            SolveStatus::Degraded => write!(f, "degraded"),
        }
    }
}

/// Errors from [`crate::GpProblem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// No point satisfies all constraints (phase I certified infeasibility).
    Infeasible,
    /// The problem is malformed (e.g. no objective set).
    InvalidProblem(String),
    /// A numerical step failed beyond recovery (every ladder rung failed).
    NumericalFailure(String),
    /// The caller's [`Deadline`] expired or was cancelled mid-solve.
    Cancelled,
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::Infeasible => write!(f, "problem is infeasible"),
            GpError::InvalidProblem(m) => write!(f, "invalid problem: {m}"),
            GpError::NumericalFailure(m) => write!(f, "numerical failure: {m}"),
            GpError::Cancelled => write!(f, "solve cancelled before completion"),
        }
    }
}

impl std::error::Error for GpError {}

/// The recovery-ladder rung that rescued a solve after a numerical failure.
/// Rungs are tried in declaration order, each strictly more invasive than
/// the last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryRung {
    /// Re-solve with a Tikhonov floor (`1e-6`) under every KKT
    /// factorization, taming near-singular Hessians at a small accuracy
    /// cost the line search absorbs.
    TikhonovRidge,
    /// Restart from a deterministically perturbed initial point (projected
    /// back onto the equality manifold), stepping around the degenerate
    /// region the nominal start ran into.
    PerturbedRestart,
    /// Both of the above plus tolerances relaxed by `1e4`; success is
    /// reported as [`SolveStatus::Degraded`].
    RelaxedTolerance,
}

impl fmt::Display for RecoveryRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryRung::TikhonovRidge => write!(f, "tikhonov-ridge"),
            RecoveryRung::PerturbedRestart => write!(f, "perturbed-restart"),
            RecoveryRung::RelaxedTolerance => write!(f, "relaxed-tolerance"),
        }
    }
}

/// How hard the recovery ladder had to work for a [`Solution`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Solve attempts consumed (1 = the nominal attempt succeeded).
    pub attempts: u32,
    /// The rung that produced the returned solution, if the nominal attempt
    /// failed.
    pub recovered_by: Option<RecoveryRung>,
}

/// The result of solving a GP: variable values (in the original, positive
/// space), objective value, and convergence data.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Values of the GP variables (positive reals).
    pub assignment: Assignment,
    /// Objective posynomial value at the solution.
    pub objective: f64,
    /// Convergence status.
    pub status: SolveStatus,
    /// Total Newton iterations across both phases.
    pub newton_iterations: usize,
    /// Newton iterations spent in each phase-II centering step, in order —
    /// the per-step convergence profile behind `newton_iterations` (phase-I
    /// iterations are included in the total only).
    pub newton_per_center: Vec<u32>,
    /// Duality-gap bound `m / t` after each phase-II centering step — the
    /// residual trajectory of the barrier method (empty for unconstrained
    /// problems).
    pub gap_trajectory: Vec<f64>,
    /// How many attempts the recovery ladder spent and which rung (if any)
    /// produced this solution.
    pub recovery: RecoveryInfo,
}

/// Internal tuning knobs for the barrier method.
#[derive(Debug, Clone)]
pub(crate) struct BarrierOptions {
    pub gap_tol: f64,
    pub newton_tol: f64,
    pub max_newton_per_center: usize,
    pub max_centering_steps: usize,
    pub mu: f64,
    /// Initial ridge added to every KKT factorization. The recovery ladder
    /// raises it; the default is small enough to leave healthy solves
    /// bit-identical to an unregularized run.
    pub base_ridge: f64,
}

impl Default for BarrierOptions {
    fn default() -> Self {
        BarrierOptions {
            gap_tol: 1e-8,
            newton_tol: 1e-10,
            max_newton_per_center: 80,
            max_centering_steps: 60,
            mu: 20.0,
            base_ridge: 1e-10,
        }
    }
}

/// Ridge floor applied by the [`RecoveryRung::TikhonovRidge`] rung and above.
const LADDER_RIDGE: f64 = 1e-6;
/// Tolerance multiplier applied by [`RecoveryRung::RelaxedTolerance`].
const LADDER_RELAX: f64 = 1e4;
/// Log-space amplitude of the [`RecoveryRung::PerturbedRestart`] offset.
const LADDER_PERTURB: f64 = 0.25;

pub(crate) struct RawSolution {
    pub y: Vec<f64>,
    pub status: SolveStatus,
    pub newton_iterations: usize,
    pub newton_per_center: Vec<u32>,
    pub gap_trajectory: Vec<f64>,
    pub recovery: RecoveryInfo,
}

/// What one phase-II barrier run produced: the final iterate plus the
/// convergence record (per-centering-step Newton counts and the duality-gap
/// trajectory).
struct BarrierRun {
    y: Vec<f64>,
    status: SolveStatus,
    newton_iterations: usize,
    newton_per_center: Vec<u32>,
    gaps: Vec<f64>,
}

/// Solves the transformed problem, escalating through the recovery ladder
/// on numerical failure.
///
/// Attempt 0 reproduces the nominal solver exactly (bit-identical on
/// healthy problems). Each subsequent attempt applies one more rung of
/// [`RecoveryRung`]; `Infeasible`, `InvalidProblem`, and `Cancelled` are
/// *not* numerical trouble and exit the ladder immediately.
pub(crate) fn solve_transformed(
    tp: &TransformedProblem,
    opts: &BarrierOptions,
    deadline: &Deadline,
) -> Result<RawSolution, GpError> {
    let mut last_failure = String::new();
    for (attempt, rung) in [
        None,
        Some(RecoveryRung::TikhonovRidge),
        Some(RecoveryRung::PerturbedRestart),
        Some(RecoveryRung::RelaxedTolerance),
    ]
    .into_iter()
    .enumerate()
    {
        let mut rung_opts = opts.clone();
        if rung.is_some() {
            rung_opts.base_ridge = rung_opts.base_ridge.max(LADDER_RIDGE);
        }
        if rung == Some(RecoveryRung::RelaxedTolerance) {
            rung_opts.gap_tol *= LADDER_RELAX;
            rung_opts.newton_tol *= LADDER_RELAX;
        }
        let perturb = matches!(
            rung,
            Some(RecoveryRung::PerturbedRestart) | Some(RecoveryRung::RelaxedTolerance)
        );
        match solve_attempt(tp, &rung_opts, deadline, attempt as u64, perturb) {
            Ok(mut raw) => {
                raw.recovery = RecoveryInfo {
                    attempts: attempt as u32 + 1,
                    recovered_by: rung,
                };
                if rung == Some(RecoveryRung::RelaxedTolerance) {
                    raw.status = SolveStatus::Degraded;
                }
                return Ok(raw);
            }
            Err(GpError::NumericalFailure(m)) => last_failure = m,
            Err(e) => return Err(e),
        }
    }
    Err(GpError::NumericalFailure(format!(
        "unrecoverable after exhausting the recovery ladder: {last_failure}"
    )))
}

/// One pass of the phase-I / phase-II pipeline. `attempt` keys the fault
/// sites (and the perturbation pattern) so injected failures replay exactly.
fn solve_attempt(
    tp: &TransformedProblem,
    opts: &BarrierOptions,
    deadline: &Deadline,
    attempt: u64,
    perturb: bool,
) -> Result<RawSolution, GpError> {
    let n = tp.n;
    let meq = tp.eq_matrix.rows();

    // A point on the equality manifold.
    let mut y0 = if meq > 0 {
        tp.eq_matrix
            .min_norm_solution(&tp.eq_rhs)
            .map_err(|e| GpError::NumericalFailure(format!("equality init: {e}")))?
    } else {
        vec![0.0; n]
    };
    // Verify the equalities are consistent.
    if meq > 0 {
        let r = axpy(&tp.eq_matrix.matvec(&y0), -1.0, &tp.eq_rhs);
        if norm2(&r) > 1e-6 * (1.0 + norm2(&tp.eq_rhs)) {
            return Err(GpError::Infeasible);
        }
    }

    if perturb {
        // Deterministic pseudo-random offset (no RNG state, pure hash of
        // (attempt, index)), projected back onto the equality manifold so
        // the restart point still satisfies `A y = b`.
        let mut p: Vec<f64> = (0..n)
            .map(|i| LADDER_PERTURB * unit_hash(attempt, i as u64))
            .collect();
        if meq > 0 {
            p = tp
                .eq_matrix
                .project_out_rowspace(&p)
                .map_err(|e| GpError::NumericalFailure(format!("restart projection: {e}")))?;
        }
        for (yv, pv) in y0.iter_mut().zip(&p) {
            *yv += pv;
        }
    }
    if thistle_fault::fire("gp.solve.nan", attempt) {
        // Chaos: poison the start point; the non-finite iterate check in
        // `center` must catch it and route the attempt into the ladder.
        if let Some(v) = y0.first_mut() {
            *v = f64::NAN;
        }
    }

    let mut total_newton = 0;

    if !tp.inequalities.is_empty() {
        let worst = tp
            .inequalities
            .iter()
            .map(|f| f.value(&y0))
            .fold(f64::NEG_INFINITY, f64::max);
        // `!(worst < ...)` rather than `worst >= ...`: a NaN margin must
        // also route through phase one.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(worst < -1e-6) {
            let (y_feas, iters) = phase_one(tp, &y0, worst, opts, deadline, attempt)?;
            total_newton += iters;
            y0 = y_feas;
        }
    }

    let run = barrier(
        &tp.objective,
        &tp.inequalities,
        &tp.eq_matrix,
        &y0,
        opts,
        deadline,
        attempt,
    )?;
    total_newton += run.newton_iterations;
    Ok(RawSolution {
        y: run.y,
        status: run.status,
        newton_iterations: total_newton,
        newton_per_center: run.newton_per_center,
        gap_trajectory: run.gaps,
        recovery: RecoveryInfo::default(),
    })
}

/// Maps `(attempt, index)` to a deterministic value in `[-1, 1)` via a
/// splitmix64-style avalanche — replayable, thread-independent, and free of
/// shared state.
fn unit_hash(attempt: u64, index: u64) -> f64 {
    let mut z = (attempt << 32) ^ index.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    2.0 * ((z >> 11) as f64 / (1u64 << 53) as f64) - 1.0
}

/// Phase I: find strictly feasible `y` or certify infeasibility.
fn phase_one(
    tp: &TransformedProblem,
    y0: &[f64],
    worst: f64,
    opts: &BarrierOptions,
    deadline: &Deadline,
    fault_key: u64,
) -> Result<(Vec<f64>, usize), GpError> {
    let n = tp.n;
    // Extended space (y, s): constraints Fi(y) - s <= 0, objective s.
    let ineqs: Vec<LogSumExp> = tp
        .inequalities
        .iter()
        .map(|f| f.with_slack_column(n))
        .collect();
    let objective = LogSumExp::slack_objective(n);
    // Extend the equality matrix with a zero column for s.
    let mut eq = Matrix::zeros(tp.eq_matrix.rows(), n + 1);
    for i in 0..tp.eq_matrix.rows() {
        for j in 0..n {
            eq[(i, j)] = tp.eq_matrix[(i, j)];
        }
    }
    let mut z0 = y0.to_vec();
    z0.push(worst + 1.0);

    let mut phase_opts = opts.clone();
    phase_opts.gap_tol = 1e-6;
    let run = barrier_with_early_exit(
        &objective,
        &ineqs,
        &eq,
        &z0,
        &phase_opts,
        Some(-1e-4), // stop as soon as s is comfortably negative
        deadline,
        fault_key,
    )?;
    let s = run.y[n];
    if s >= -1e-9 {
        return Err(GpError::Infeasible);
    }
    Ok((run.y[..n].to_vec(), run.newton_iterations))
}

#[allow(clippy::too_many_arguments)]
fn barrier(
    objective: &LogSumExp,
    ineqs: &[LogSumExp],
    eq: &Matrix,
    y0: &[f64],
    opts: &BarrierOptions,
    deadline: &Deadline,
    fault_key: u64,
) -> Result<BarrierRun, GpError> {
    barrier_with_early_exit(objective, ineqs, eq, y0, opts, None, deadline, fault_key)
}

/// The barrier loop. If `exit_below` is set, returns as soon as the
/// objective value drops below it (used by phase I). The returned
/// [`BarrierRun`] carries the Newton count of every centering step and the
/// duality-gap bound `m / t` after each one.
#[allow(clippy::too_many_arguments)]
fn barrier_with_early_exit(
    objective: &LogSumExp,
    ineqs: &[LogSumExp],
    eq: &Matrix,
    y0: &[f64],
    opts: &BarrierOptions,
    exit_below: Option<f64>,
    deadline: &Deadline,
    fault_key: u64,
) -> Result<BarrierRun, GpError> {
    let m = ineqs.len();
    let mut y = y0.to_vec();
    let mut total_iters = 0;
    let mut t = 1.0;
    let mut status = SolveStatus::Optimal;
    let mut gaps = Vec::new();
    let mut per_center: Vec<u32> = Vec::new();
    let finish = |y: Vec<f64>, status, total_iters, per_center, gaps| BarrierRun {
        y,
        status,
        newton_iterations: total_iters,
        newton_per_center: per_center,
        gaps,
    };

    for outer in 0..opts.max_centering_steps {
        if deadline.expired() {
            return Err(GpError::Cancelled);
        }
        if thistle_fault::fire("gp.solve.diverge", fault_key) {
            return Err(GpError::NumericalFailure(
                "injected divergence in barrier loop".into(),
            ));
        }
        let iters = center(objective, ineqs, eq, &mut y, t, opts, deadline, fault_key)?;
        total_iters += iters;
        per_center.push(iters as u32);
        if m > 0 {
            gaps.push(m as f64 / t);
        }
        if let Some(threshold) = exit_below {
            if objective.value(&y) < threshold {
                return Ok(finish(
                    y,
                    SolveStatus::Optimal,
                    total_iters,
                    per_center,
                    gaps,
                ));
            }
        }
        if m == 0 || (m as f64) / t < opts.gap_tol {
            return Ok(finish(y, status, total_iters, per_center, gaps));
        }
        t *= opts.mu;
        if outer == opts.max_centering_steps - 1 {
            status = SolveStatus::Inaccurate;
        }
    }
    Ok(finish(
        y,
        SolveStatus::Inaccurate,
        total_iters,
        per_center,
        gaps,
    ))
}

/// One centering step: Newton-minimize `t*F0(y) + phi(y)` subject to the
/// equality constraints, starting from a feasible `y`.
#[allow(clippy::too_many_arguments)]
fn center(
    objective: &LogSumExp,
    ineqs: &[LogSumExp],
    eq: &Matrix,
    y: &mut Vec<f64>,
    t: f64,
    opts: &BarrierOptions,
    deadline: &Deadline,
    fault_key: u64,
) -> Result<usize, GpError> {
    let n = y.len();
    let meq = eq.rows();

    // Evaluation buffers, allocated once and overwritten each iteration by
    // the compiled-form kernels (`LogSumExp::eval_into`).
    let mut scratch = LseScratch::default();
    let mut grad = vec![0.0; n];
    let mut hess = Matrix::zeros(n, n);
    let mut gi = vec![0.0; n];
    let mut hi = Matrix::zeros(n, n);

    for iter in 0..opts.max_newton_per_center {
        if deadline.expired() {
            return Err(GpError::Cancelled);
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NumericalFailure(
                "non-finite iterate in centering step".into(),
            ));
        }
        // Assemble gradient and Hessian of t*F0 + phi.
        objective.eval_into(y, &mut grad, Some(&mut hess), &mut scratch);
        for g in grad.iter_mut() {
            *g *= t;
        }
        hess.scale_in_place(t);
        for f in ineqs {
            let v = f.eval_into(y, &mut gi, Some(&mut hi), &mut scratch);
            // `!(v < 0.0)` rather than `v >= 0.0`: a NaN value must also be
            // treated as having left the feasible region.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(v < 0.0) {
                return Err(GpError::NumericalFailure(
                    "barrier iterate left the feasible region".into(),
                ));
            }
            let inv = -1.0 / v; // 1 / (-Fi) > 0
            for (gacc, &gc) in grad.iter_mut().zip(&gi) {
                *gacc += inv * gc;
            }
            // hess += inv^2 * gi gi^T + inv * Hi
            hess.add_outer(inv * inv, &gi);
            hess.add_scaled(inv, &hi);
        }

        // Solve the KKT system, escalating the ridge on failure. The chaos
        // site skips the factorization loop entirely, simulating a system
        // that stays singular at every ridge level.
        let mut dy: Option<Vec<f64>> = None;
        if !thistle_fault::fire("gp.kkt.singular", fault_key) {
            let mut ridge = opts.base_ridge;
            while ridge < 1e4 {
                let mut h = hess.clone();
                h.add_diagonal(ridge);
                let step = if meq == 0 {
                    h.cholesky_solve(&neg(&grad)).ok()
                } else {
                    solve_kkt(&h, eq, &neg(&grad)).ok()
                };
                if let Some(s) = step {
                    if s.iter().all(|v| v.is_finite()) {
                        dy = Some(s);
                        break;
                    }
                }
                ridge *= 100.0;
            }
        }
        let dy = dy.ok_or_else(|| {
            GpError::NumericalFailure("KKT system unsolvable at any ridge level".into())
        })?;

        let lambda_sq = -dot(&grad, &dy);
        if !lambda_sq.is_finite() {
            return Err(GpError::NumericalFailure(
                "non-finite Newton decrement".into(),
            ));
        }
        if lambda_sq / 2.0 <= opts.newton_tol {
            return Ok(iter);
        }

        // Backtracking line search on the barrier merit function.
        let merit = |pt: &[f64]| -> f64 {
            let mut val = t * objective.value(pt);
            for f in ineqs {
                let fv = f.value(pt);
                if fv >= 0.0 {
                    return f64::INFINITY;
                }
                val -= (-fv).ln();
            }
            val
        };
        let m0 = merit(y);
        let slope = dot(&grad, &dy); // negative
        let mut step = 1.0;
        let mut accepted = false;
        for _ in 0..70 {
            let cand = axpy(y, step, &dy);
            let mc = merit(&cand);
            if mc <= m0 + 0.25 * step * slope {
                *y = cand;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            // Progress stalled at numerical precision — treat as converged.
            return Ok(iter);
        }
        debug_assert!(n == y.len());
    }
    Ok(opts.max_newton_per_center)
}

/// Solves the KKT system `[H A^T; A 0] [dy; w] = [rhs; 0]` by dense LU.
fn solve_kkt(
    h: &Matrix,
    a: &Matrix,
    rhs: &[f64],
) -> Result<Vec<f64>, crate::linalg::SolveMatrixError> {
    let n = h.rows();
    let m = a.rows();
    let mut kkt = Matrix::zeros(n + m, n + m);
    for i in 0..n {
        for j in 0..n {
            kkt[(i, j)] = h[(i, j)];
        }
    }
    for i in 0..m {
        for j in 0..n {
            kkt[(n + i, j)] = a[(i, j)];
            kkt[(j, n + i)] = a[(i, j)];
        }
    }
    let mut full_rhs = rhs.to_vec();
    full_rhs.extend(std::iter::repeat_n(0.0, m));
    let sol = kkt.solve(&full_rhs)?;
    Ok(sol[..n].to_vec())
}

fn neg(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| -x).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::TransformedProblem;
    use thistle_expr::{Monomial, Posynomial, VarRegistry};

    fn solve(
        n: usize,
        obj: &Posynomial,
        ineqs: &[Posynomial],
        eqs: &[Monomial],
    ) -> Result<Vec<f64>, GpError> {
        let tp = TransformedProblem::new(n, obj, ineqs, eqs);
        let raw = solve_transformed(&tp, &BarrierOptions::default(), &Deadline::none())?;
        Ok(tp.to_gp_point(&raw.y))
    }

    #[test]
    fn unconstrained_monomial_tradeoff() {
        // min x + 1/x  => x = 1.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let obj = Posynomial::from_var(x) + Posynomial::from(Monomial::new(1.0, [(x, -1.0)]));
        let sol = solve(1, &obj, &[], &[]).unwrap();
        assert!((sol[0] - 1.0).abs() < 1e-5, "{sol:?}");
    }

    #[test]
    fn equality_constrained() {
        // min x + y s.t. x*y = 16  => x = y = 4.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let obj = Posynomial::from_var(x) + Posynomial::from_var(y);
        let eq = Monomial::new(1.0 / 16.0, [(x, 1.0), (y, 1.0)]);
        let sol = solve(2, &obj, &[], &[eq]).unwrap();
        assert!((sol[0] - 4.0).abs() < 1e-4, "{sol:?}");
        assert!((sol[1] - 4.0).abs() < 1e-4, "{sol:?}");
    }

    #[test]
    fn inequality_active_at_optimum() {
        // min 1/(x*y) s.t. x <= 2, y <= 3 => x=2, y=3.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let obj = Posynomial::from(Monomial::new(1.0, [(x, -1.0), (y, -1.0)]));
        let ineqs = vec![
            Posynomial::from(Monomial::new(0.5, [(x, 1.0)])),
            Posynomial::from(Monomial::new(1.0 / 3.0, [(y, 1.0)])),
        ];
        let sol = solve(2, &obj, &ineqs, &[]).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-4, "{sol:?}");
        assert!((sol[1] - 3.0).abs() < 1e-4, "{sol:?}");
    }

    #[test]
    fn per_center_counts_profile_the_barrier() {
        // Constrained problem: phase II runs several centering steps, and
        // the per-center profile must line up with the gap trajectory.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let obj = Posynomial::from(Monomial::new(1.0, [(x, -1.0), (y, -1.0)]));
        let ineqs = vec![
            Posynomial::from(Monomial::new(0.5, [(x, 1.0)])),
            Posynomial::from(Monomial::new(1.0 / 3.0, [(y, 1.0)])),
        ];
        let tp = TransformedProblem::new(2, &obj, &ineqs, &[]);
        let raw = solve_transformed(&tp, &BarrierOptions::default(), &Deadline::none()).unwrap();
        assert!(!raw.newton_per_center.is_empty());
        assert_eq!(raw.newton_per_center.len(), raw.gap_trajectory.len());
        let phase_two: usize = raw.newton_per_center.iter().map(|&i| i as usize).sum();
        assert!(phase_two <= raw.newton_iterations);
    }

    #[test]
    fn infeasible_is_detected() {
        // x <= 1 and x >= 2 simultaneously.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let ineqs = vec![
            Posynomial::from(Monomial::new(1.0, [(x, 1.0)])), // x <= 1
            Posynomial::from(Monomial::new(2.0, [(x, -1.0)])), // 2/x <= 1 => x >= 2
        ];
        let err = solve(1, &Posynomial::from_var(x), &ineqs, &[]).unwrap_err();
        assert_eq!(err, GpError::Infeasible);
    }

    #[test]
    fn phase_one_needed_and_succeeds() {
        // Start point (x=1) violates x >= 10; optimum at x = 10.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let ineqs = vec![Posynomial::from(Monomial::new(10.0, [(x, -1.0)]))];
        let sol = solve(1, &Posynomial::from_var(x), &ineqs, &[]).unwrap();
        assert!((sol[0] - 10.0).abs() < 1e-3, "{sol:?}");
    }
}
