//! Barrier interior-point solver for log-transformed geometric programs.
//!
//! The solver minimizes `F0(y)` subject to `Fi(y) <= 0` and `A y = b`, where
//! every `F` is a [`LogSumExp`] (hence smooth and convex):
//!
//! * **Phase I** finds a strictly feasible point by solving
//!   `min s  s.t.  Fi(y) - s <= 0, A y = b`. In log-space `Fi(y) - s` is
//!   again a log-sum-exp over the extended variable vector `(y, s)` — each
//!   exponential row simply gains a `-1` coefficient on `s` — so phase I
//!   reuses the phase-II machinery verbatim.
//! * **Phase II** runs the standard log-barrier method: repeatedly center
//!   `t F0(y) - sum_i log(-Fi(y))` with equality-constrained Newton steps and
//!   increase `t` until the duality gap bound `m / t` is below tolerance.

use crate::deadline::Deadline;
use crate::linalg::{axpy, dot, norm2, Matrix};
use crate::transform::{LogSumExp, LoweringReuse, LseScratch, TransformedProblem};
use std::fmt;
use thistle_expr::Assignment;

/// Why a [`Solution`] should (or should not) be trusted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// Converged to the requested duality-gap tolerance.
    #[default]
    Optimal,
    /// Iteration limits were hit before full convergence; the returned point
    /// is feasible but may be slightly suboptimal.
    Inaccurate,
    /// The solve only succeeded on the relaxed-tolerance rung of the
    /// recovery ladder: the point is feasible but its optimality gap is
    /// orders of magnitude looser than requested.
    Degraded,
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveStatus::Optimal => write!(f, "optimal"),
            SolveStatus::Inaccurate => write!(f, "inaccurate"),
            SolveStatus::Degraded => write!(f, "degraded"),
        }
    }
}

/// Errors from [`crate::GpProblem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// No point satisfies all constraints (phase I certified infeasibility).
    Infeasible,
    /// The problem is malformed (e.g. no objective set).
    InvalidProblem(String),
    /// A numerical step failed beyond recovery (every ladder rung failed).
    NumericalFailure(String),
    /// The caller's [`Deadline`] expired or was cancelled mid-solve.
    Cancelled,
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::Infeasible => write!(f, "problem is infeasible"),
            GpError::InvalidProblem(m) => write!(f, "invalid problem: {m}"),
            GpError::NumericalFailure(m) => write!(f, "numerical failure: {m}"),
            GpError::Cancelled => write!(f, "solve cancelled before completion"),
        }
    }
}

impl std::error::Error for GpError {}

/// The recovery-ladder rung that rescued a solve after a numerical failure.
/// Rungs are tried in declaration order, each strictly more invasive than
/// the last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryRung {
    /// Re-solve with a Tikhonov floor (`1e-6`) under every KKT
    /// factorization, taming near-singular Hessians at a small accuracy
    /// cost the line search absorbs.
    TikhonovRidge,
    /// Restart from a deterministically perturbed initial point (projected
    /// back onto the equality manifold), stepping around the degenerate
    /// region the nominal start ran into.
    PerturbedRestart,
    /// Both of the above plus tolerances relaxed by `1e4`; success is
    /// reported as [`SolveStatus::Degraded`].
    RelaxedTolerance,
}

impl fmt::Display for RecoveryRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryRung::TikhonovRidge => write!(f, "tikhonov-ridge"),
            RecoveryRung::PerturbedRestart => write!(f, "perturbed-restart"),
            RecoveryRung::RelaxedTolerance => write!(f, "relaxed-tolerance"),
        }
    }
}

/// How hard the recovery ladder had to work for a [`Solution`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Solve attempts consumed (1 = the nominal attempt succeeded).
    pub attempts: u32,
    /// The rung that produced the returned solution, if the nominal attempt
    /// failed.
    pub recovered_by: Option<RecoveryRung>,
}

/// Warm-start accounting for a [`Solution`] (all zeros on cold solves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmInfo {
    /// Whether the warm path actually ran. `false` on cold solves and on
    /// warm requests that fell back to the cold ladder (bad start point,
    /// numerical trouble on the warm attempt).
    pub warm_started: bool,
    /// CSR rows reused vs re-lowered by the patched lowering, when the
    /// solve went through [`crate::GpProblem::solve_warm`].
    pub reuse: LoweringReuse,
}

/// The result of solving a GP: variable values (in the original, positive
/// space), objective value, and convergence data.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Values of the GP variables (positive reals).
    pub assignment: Assignment,
    /// Objective posynomial value at the solution.
    pub objective: f64,
    /// Convergence status.
    pub status: SolveStatus,
    /// Total Newton iterations across both phases.
    pub newton_iterations: usize,
    /// Newton iterations spent in each phase-II centering step, in order —
    /// the per-step convergence profile behind `newton_iterations` (phase-I
    /// iterations are included in the total only).
    pub newton_per_center: Vec<u32>,
    /// Duality-gap bound `m / t` after each phase-II centering step — the
    /// residual trajectory of the barrier method (empty for unconstrained
    /// problems).
    pub gap_trajectory: Vec<f64>,
    /// How many attempts the recovery ladder spent and which rung (if any)
    /// produced this solution.
    pub recovery: RecoveryInfo,
    /// Warm-start accounting (all zeros for cold solves).
    pub warm: WarmInfo,
}

/// Internal tuning knobs for the barrier method.
#[derive(Debug, Clone)]
pub(crate) struct BarrierOptions {
    pub gap_tol: f64,
    pub newton_tol: f64,
    pub max_newton_per_center: usize,
    pub max_centering_steps: usize,
    pub mu: f64,
    /// Initial ridge added to every KKT factorization. The recovery ladder
    /// raises it; the default is small enough to leave healthy solves
    /// bit-identical to an unregularized run.
    pub base_ridge: f64,
    /// Newton budget for *intermediate* centering steps (the final centering
    /// always gets the full `max_newton_per_center`). Path-following does
    /// not require exact intermediate centering — a roughly centered point
    /// tracks the path fine — so warm runs cap the crawl; `None` (cold
    /// solves) centers every step to `newton_tol`.
    pub inexact_cap: Option<usize>,
}

impl Default for BarrierOptions {
    fn default() -> Self {
        BarrierOptions {
            gap_tol: 1e-8,
            newton_tol: 1e-10,
            max_newton_per_center: 80,
            max_centering_steps: 60,
            mu: 20.0,
            base_ridge: 1e-10,
            inexact_cap: None,
        }
    }
}

/// Ridge floor applied by the [`RecoveryRung::TikhonovRidge`] rung and above.
const LADDER_RIDGE: f64 = 1e-6;
/// Tolerance multiplier applied by [`RecoveryRung::RelaxedTolerance`].
const LADDER_RELAX: f64 = 1e4;
/// Log-space amplitude of the [`RecoveryRung::PerturbedRestart`] offset.
const LADDER_PERTURB: f64 = 0.25;
/// Initial duality-gap target for warm-started barrier runs: the first
/// centering step opens at `t0 = m / WARM_GAP_START` instead of `t = 1`,
/// skipping the early outer iterations a near-optimal start point does not
/// need.
pub(crate) const WARM_GAP_START: f64 = 5e-1;
/// Fault/perturbation key for the warm attempt, disjoint from the cold
/// ladder's attempt indices 0..=3.
pub(crate) const WARM_FAULT_KEY: u64 = 4;
/// Newton budget per *intermediate* centering on warm runs (see
/// [`BarrierOptions::inexact_cap`]); the final centering is never capped.
pub(crate) const WARM_INEXACT_CAP: usize = 6;
/// Slack-variable start margin for a *warm* phase I. The cold path starts
/// at `s0 = worst + 1.0` because its start point can be arbitrarily bad; a
/// warm start's violation is small, and a tight margin keeps the phase-I
/// descent short.
pub(crate) const WARM_PHASE1_MARGIN: f64 = 0.05;
/// Initial barrier `t` for a *warm* phase I: weighting the slack objective
/// heavily makes phase I dive straight for feasibility with minimal drift
/// from the donor point, instead of re-centering toward the analytic
/// center like the cold path's `t = 1` start.
pub(crate) const WARM_PHASE1_T0: f64 = 100.0;
/// Interior margin the warm-start repair pass restores on violated
/// inequalities (in log-space constraint value).
const WARM_REPAIR_MARGIN: f64 = 1e-4;

pub(crate) struct RawSolution {
    pub y: Vec<f64>,
    pub status: SolveStatus,
    pub newton_iterations: usize,
    pub newton_per_center: Vec<u32>,
    pub gap_trajectory: Vec<f64>,
    pub recovery: RecoveryInfo,
}

/// What one phase-II barrier run produced: the final iterate plus the
/// convergence record (per-centering-step Newton counts and the duality-gap
/// trajectory).
struct BarrierRun {
    y: Vec<f64>,
    status: SolveStatus,
    newton_iterations: usize,
    newton_per_center: Vec<u32>,
    gaps: Vec<f64>,
}

/// Solves the transformed problem, escalating through the recovery ladder
/// on numerical failure.
///
/// Attempt 0 reproduces the nominal solver exactly (bit-identical on
/// healthy problems). Each subsequent attempt applies one more rung of
/// [`RecoveryRung`]; `Infeasible`, `InvalidProblem`, and `Cancelled` are
/// *not* numerical trouble and exit the ladder immediately.
pub(crate) fn solve_transformed(
    tp: &TransformedProblem,
    opts: &BarrierOptions,
    deadline: &Deadline,
) -> Result<RawSolution, GpError> {
    let mut last_failure = String::new();
    for (attempt, rung) in [
        None,
        Some(RecoveryRung::TikhonovRidge),
        Some(RecoveryRung::PerturbedRestart),
        Some(RecoveryRung::RelaxedTolerance),
    ]
    .into_iter()
    .enumerate()
    {
        let mut rung_opts = opts.clone();
        if rung.is_some() {
            rung_opts.base_ridge = rung_opts.base_ridge.max(LADDER_RIDGE);
        }
        if rung == Some(RecoveryRung::RelaxedTolerance) {
            rung_opts.gap_tol *= LADDER_RELAX;
            rung_opts.newton_tol *= LADDER_RELAX;
        }
        let perturb = matches!(
            rung,
            Some(RecoveryRung::PerturbedRestart) | Some(RecoveryRung::RelaxedTolerance)
        );
        match solve_attempt(tp, &rung_opts, deadline, attempt as u64, perturb) {
            Ok(mut raw) => {
                raw.recovery = RecoveryInfo {
                    attempts: attempt as u32 + 1,
                    recovered_by: rung,
                };
                if rung == Some(RecoveryRung::RelaxedTolerance) {
                    raw.status = SolveStatus::Degraded;
                }
                return Ok(raw);
            }
            Err(GpError::NumericalFailure(m)) => last_failure = m,
            Err(e) => return Err(e),
        }
    }
    Err(GpError::NumericalFailure(format!(
        "unrecoverable after exhausting the recovery ladder: {last_failure}"
    )))
}

/// Solves the transformed problem warm-started from the GP-space point
/// `x0` (typically the optimum of a structurally identical prior problem).
/// Returns the solution plus whether the warm path actually produced it.
///
/// The warm attempt projects `ln(x0)` onto the new equality manifold via a
/// min-norm correction, skips phase I when the projected point is already
/// strictly feasible, and opens the barrier at an elevated `t`. Numerical
/// trouble on the warm attempt falls back to the full cold ladder, so the
/// returned point matches a cold solve up to solver tolerance either way
/// (the problem is convex: both paths converge to the same optimum).
pub(crate) fn solve_transformed_warm(
    tp: &TransformedProblem,
    opts: &BarrierOptions,
    deadline: &Deadline,
    x0: &[f64],
) -> Result<(RawSolution, bool), GpError> {
    match warm_attempt(tp, opts, deadline, x0) {
        Ok(mut raw) => {
            raw.recovery = RecoveryInfo {
                attempts: 1,
                recovered_by: None,
            };
            Ok((raw, true))
        }
        // An `Infeasible` from the warm attempt is as untrustworthy as
        // numerical trouble: the aggressive warm phase I can stall on a
        // feasible problem, and the heuristic projection can drift off the
        // equality manifold. Only the cold path's verdicts are
        // authoritative, so both fall back to it.
        Err(GpError::NumericalFailure(_)) | Err(GpError::Infeasible) => {
            solve_transformed(tp, opts, deadline).map(|raw| (raw, false))
        }
        Err(e) => Err(e),
    }
}

fn warm_attempt(
    tp: &TransformedProblem,
    opts: &BarrierOptions,
    deadline: &Deadline,
    x0: &[f64],
) -> Result<RawSolution, GpError> {
    let n = tp.n;
    if x0.len() != n {
        return Err(GpError::NumericalFailure(format!(
            "warm point has dimension {} but the problem has {n} variables",
            x0.len()
        )));
    }
    let mut y0: Vec<f64> = x0.iter().map(|&x| x.ln()).collect();
    if y0.iter().any(|v| !v.is_finite()) {
        return Err(GpError::NumericalFailure(
            "warm point is not strictly positive and finite".into(),
        ));
    }

    // Project onto the equality manifold: the near-miss changed right-hand
    // sides (e.g. the batch trip-count product), so the donor optimum sits
    // off the new manifold by exactly that delta. Any `d` with
    // `A d = A y0 - b` restores the equalities; a plain min-norm `d` spreads
    // the delta uniformly, which perturbs tile variables sitting in tight
    // footprint constraints and wrecks the donor's feasibility margins.
    // Instead minimize `sum((s_j d_j)^2)` where `s_j` grows with variable
    // j's total inequality sensitivity at the donor point: the correction
    // flows into directions the constraints barely see (outer trip counts),
    // keeping the donor's margins nearly intact.
    let meq = tp.eq_matrix.rows();
    let m = tp.inequalities.len();

    // Sensitivity weight per variable: 1 + total |gradient| over every
    // inequality at the donor point. Cheap directions (outer trip counts,
    // the delay variable) get small weights; tile variables buried in tight
    // footprint constraints get large ones.
    let sens: Vec<f64> = {
        let mut sens = vec![1.0f64; n];
        let mut scratch = LseScratch::default();
        let mut gi = vec![0.0; n];
        for f in &tp.inequalities {
            f.eval_into(&y0, &mut gi, None, &mut scratch);
            for (s, g) in sens.iter_mut().zip(&gi) {
                *s += g.abs();
            }
        }
        sens
    };
    // Minimal sensitivity-weighted step satisfying the linear system
    // `rows * d = rhs`: substituting `u_j = s_j d_j` turns the weighted
    // min-norm problem into a plain one on the column-scaled matrix.
    let weighted_step = |rows: &Matrix, rhs: &[f64]| -> Result<Vec<f64>, GpError> {
        let k = rows.rows();
        let mut scaled = Matrix::zeros(k, n);
        for i in 0..k {
            for j in 0..n {
                scaled[(i, j)] = rows[(i, j)] / sens[j];
            }
        }
        let u = scaled
            .min_norm_solution(rhs)
            .map_err(|e| GpError::NumericalFailure(format!("warm projection: {e}")))?;
        Ok(u.iter().zip(&sens).map(|(uv, s)| uv / s).collect())
    };

    if meq > 0 {
        let r = axpy(&tp.eq_matrix.matvec(&y0), -1.0, &tp.eq_rhs);
        let d = weighted_step(&tp.eq_matrix, &r)?;
        for (yv, dv) in y0.iter_mut().zip(&d) {
            *yv -= dv;
        }
    }

    // Repair pass: the projection restores the equalities but cannot touch
    // variables outside every equality row (e.g. the delay variable, whose
    // bandwidth constraints scale with the changed workload). Linearize the
    // violated and knife-edge inequalities and take the smallest weighted
    // step that restores an interior margin while staying on the equality
    // manifold (`A d = 0`). Convexity makes the linearization an
    // underestimate of the repair, hence the few-pass loop; any residual
    // violation falls through to the warm phase I below.
    if m > 0 {
        let mut scratch = LseScratch::default();
        let mut gi = vec![0.0; n];
        for _pass in 0..8 {
            let mut rows: Vec<(Vec<f64>, f64)> = Vec::new();
            // Only genuine violations enter the repair set: constraints
            // merely tight at the donor optimum are *supposed* to be tight
            // (complementarity), and demanding fresh margin on all of them
            // would force a large, ill-conditioned step away from the
            // optimum. The sensitivity weights keep the repair step out of
            // their variables instead.
            for f in &tp.inequalities {
                let v = f.eval_into(&y0, &mut gi, None, &mut scratch);
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(v < -1e-9) {
                    rows.push((gi.clone(), -(v + WARM_REPAIR_MARGIN)));
                }
            }
            if rows.is_empty() {
                break;
            }
            let mut stacked = Matrix::zeros(meq + rows.len(), n);
            let mut rhs = vec![0.0; meq + rows.len()];
            for i in 0..meq {
                for j in 0..n {
                    stacked[(i, j)] = tp.eq_matrix[(i, j)];
                }
            }
            for (i, (grad, target)) in rows.iter().enumerate() {
                for j in 0..n {
                    stacked[(meq + i, j)] = grad[j];
                }
                rhs[meq + i] = *target;
            }
            // A rank-deficient stack (parallel gradients) is not fatal:
            // stop repairing and let phase I finish the job.
            let Ok(d) = weighted_step(&stacked, &rhs) else {
                break;
            };
            for (yv, dv) in y0.iter_mut().zip(&d) {
                *yv += dv;
            }
        }
    }

    if meq > 0 {
        let r2 = axpy(&tp.eq_matrix.matvec(&y0), -1.0, &tp.eq_rhs);
        if norm2(&r2) > 1e-6 * (1.0 + norm2(&tp.eq_rhs)) {
            return Err(GpError::Infeasible);
        }
    }

    let mut total_newton = 0;
    if m > 0 {
        let worst = tp
            .inequalities
            .iter()
            .map(|f| f.value(&y0))
            .fold(f64::NEG_INFINITY, f64::max);
        // A barrier optimum hugs its active constraints by less than the
        // cold path's -1e-6 interior margin, so a projected donor point is
        // routinely within 1e-6 of a boundary — and that is fine: the
        // centering backtracker keeps iterates strictly feasible from any
        // strictly feasible start. Only a genuine violation needs phase I,
        // and then a *warm* one: a tight slack margin and an elevated `t`
        // make it dive for feasibility instead of re-centering toward the
        // analytic center (which would throw away the donor's proximity).
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(worst < -1e-9) {
            let (y_feas, iters) = phase_one(
                tp,
                &y0,
                worst,
                WARM_PHASE1_MARGIN,
                WARM_PHASE1_T0,
                opts,
                deadline,
                WARM_FAULT_KEY,
            )?;
            total_newton += iters;
            y0 = y_feas;
        }
    }

    // Open the barrier part-way down the central path instead of at `t = 1`:
    // the donor's relaxed optimum is already near the new optimum, so the
    // early wide-gap centerings a cold solve needs are wasted work. Entering
    // too tight backfires, though — the donor point hugs the active
    // constraints, and a tight barrier makes the first centering fight its
    // way outward — so `WARM_GAP_START` is deliberately moderate. The raw
    // `t0` is then snapped onto the grid `t_final / mu^j`, where `t_final`
    // is the last `t` a cold solve would center at: otherwise the warm run
    // can overshoot the gap tolerance by most of a `mu` factor and spend its
    // final centering at a much stiffer barrier than cold ever faces.
    // A near-optimal start also tolerates a more aggressive barrier
    // schedule: with most of the path already behind it, the damped Newton
    // phase after each `t`-jump is short, so fewer/longer outer steps win.
    // Squaring `mu` keeps the warm grid a subset of the cold grid.
    let wopts = BarrierOptions {
        mu: opts.mu * opts.mu,
        inexact_cap: Some(WARM_INEXACT_CAP),
        ..opts.clone()
    };
    let t0 = warm_t0(m, opts, wopts.mu);
    let run = barrier_from(
        &tp.objective,
        &tp.inequalities,
        &tp.eq_matrix,
        &y0,
        t0,
        &wopts,
        deadline,
        WARM_FAULT_KEY,
    )?;
    total_newton += run.newton_iterations;
    Ok(RawSolution {
        y: run.y,
        status: run.status,
        newton_iterations: total_newton,
        newton_per_center: run.newton_per_center,
        gap_trajectory: run.gaps,
        recovery: RecoveryInfo::default(),
    })
}

/// One pass of the phase-I / phase-II pipeline. `attempt` keys the fault
/// sites (and the perturbation pattern) so injected failures replay exactly.
fn solve_attempt(
    tp: &TransformedProblem,
    opts: &BarrierOptions,
    deadline: &Deadline,
    attempt: u64,
    perturb: bool,
) -> Result<RawSolution, GpError> {
    let n = tp.n;
    let meq = tp.eq_matrix.rows();

    // A point on the equality manifold.
    let mut y0 = if meq > 0 {
        tp.eq_matrix
            .min_norm_solution(&tp.eq_rhs)
            .map_err(|e| GpError::NumericalFailure(format!("equality init: {e}")))?
    } else {
        vec![0.0; n]
    };
    // Verify the equalities are consistent.
    if meq > 0 {
        let r = axpy(&tp.eq_matrix.matvec(&y0), -1.0, &tp.eq_rhs);
        if norm2(&r) > 1e-6 * (1.0 + norm2(&tp.eq_rhs)) {
            return Err(GpError::Infeasible);
        }
    }

    if perturb {
        // Deterministic pseudo-random offset (no RNG state, pure hash of
        // (attempt, index)), projected back onto the equality manifold so
        // the restart point still satisfies `A y = b`.
        let mut p: Vec<f64> = (0..n)
            .map(|i| LADDER_PERTURB * unit_hash(attempt, i as u64))
            .collect();
        if meq > 0 {
            p = tp
                .eq_matrix
                .project_out_rowspace(&p)
                .map_err(|e| GpError::NumericalFailure(format!("restart projection: {e}")))?;
        }
        for (yv, pv) in y0.iter_mut().zip(&p) {
            *yv += pv;
        }
    }
    if thistle_fault::fire("gp.solve.nan", attempt) {
        // Chaos: poison the start point; the non-finite iterate check in
        // `center` must catch it and route the attempt into the ladder.
        if let Some(v) = y0.first_mut() {
            *v = f64::NAN;
        }
    }

    let mut total_newton = 0;

    if !tp.inequalities.is_empty() {
        let worst = tp
            .inequalities
            .iter()
            .map(|f| f.value(&y0))
            .fold(f64::NEG_INFINITY, f64::max);
        // `!(worst < ...)` rather than `worst >= ...`: a NaN margin must
        // also route through phase one.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(worst < -1e-6) {
            let (y_feas, iters) = phase_one(tp, &y0, worst, 1.0, 1.0, opts, deadline, attempt)?;
            total_newton += iters;
            y0 = y_feas;
        }
    }

    let run = barrier(
        &tp.objective,
        &tp.inequalities,
        &tp.eq_matrix,
        &y0,
        opts,
        deadline,
        attempt,
    )?;
    total_newton += run.newton_iterations;
    Ok(RawSolution {
        y: run.y,
        status: run.status,
        newton_iterations: total_newton,
        newton_per_center: run.newton_per_center,
        gap_trajectory: run.gaps,
        recovery: RecoveryInfo::default(),
    })
}

/// The warm-start initial barrier weight: `m / WARM_GAP_START`, snapped down
/// onto the grid `t_final / warm_mu^j` so the warm schedule's last centering
/// lands on the same final `t` a cold solve reaches (see the comment in
/// [`warm_attempt`]). Shared with the batched engine, whose screening runs
/// open their warm-chained phase II at the same point.
pub(crate) fn warm_t0(m: usize, cold: &BarrierOptions, warm_mu: f64) -> f64 {
    if m == 0 {
        return 1.0;
    }
    let raw = (m as f64 / WARM_GAP_START).max(1.0);
    let lmu_cold = cold.mu.ln();
    let k_final = ((m as f64 / cold.gap_tol).ln() / lmu_cold).ceil().max(0.0);
    let t_final = cold.mu.powf(k_final);
    let lmu = warm_mu.ln();
    let j = ((t_final / raw).ln() / lmu).floor().max(0.0);
    (t_final / warm_mu.powf(j)).max(1.0)
}

/// Maps `(attempt, index)` to a deterministic value in `[-1, 1)` via a
/// splitmix64-style avalanche — replayable, thread-independent, and free of
/// shared state.
fn unit_hash(attempt: u64, index: u64) -> f64 {
    let mut z = (attempt << 32) ^ index.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    2.0 * ((z >> 11) as f64 / (1u64 << 53) as f64) - 1.0
}

/// Phase I: find strictly feasible `y` or certify infeasibility.
///
/// `s_margin` sets the slack start `s0 = worst + s_margin` and `t0` the
/// initial barrier weight on the slack objective; the cold path uses
/// `(1.0, 1.0)`, warm starts use tighter/heavier settings (see
/// [`WARM_PHASE1_MARGIN`], [`WARM_PHASE1_T0`]).
#[allow(clippy::too_many_arguments)]
fn phase_one(
    tp: &TransformedProblem,
    y0: &[f64],
    worst: f64,
    s_margin: f64,
    t0: f64,
    opts: &BarrierOptions,
    deadline: &Deadline,
    fault_key: u64,
) -> Result<(Vec<f64>, usize), GpError> {
    let n = tp.n;
    // Extended space (y, s): constraints Fi(y) - s <= 0, objective s.
    let ineqs: Vec<LogSumExp> = tp
        .inequalities
        .iter()
        .map(|f| f.with_slack_column(n))
        .collect();
    let objective = LogSumExp::slack_objective(n);
    // Extend the equality matrix with a zero column for s.
    let mut eq = Matrix::zeros(tp.eq_matrix.rows(), n + 1);
    for i in 0..tp.eq_matrix.rows() {
        for j in 0..n {
            eq[(i, j)] = tp.eq_matrix[(i, j)];
        }
    }
    let mut z0 = y0.to_vec();
    z0.push(worst + s_margin);

    let mut phase_opts = opts.clone();
    phase_opts.gap_tol = 1e-6;
    let run = barrier_with_early_exit(
        &objective,
        &ineqs,
        &eq,
        &z0,
        t0,
        &phase_opts,
        Some(-1e-4), // stop as soon as s is comfortably negative
        deadline,
        fault_key,
    )?;
    let s = run.y[n];
    if s >= -1e-9 {
        return Err(GpError::Infeasible);
    }
    Ok((run.y[..n].to_vec(), run.newton_iterations))
}

#[allow(clippy::too_many_arguments)]
fn barrier(
    objective: &LogSumExp,
    ineqs: &[LogSumExp],
    eq: &Matrix,
    y0: &[f64],
    opts: &BarrierOptions,
    deadline: &Deadline,
    fault_key: u64,
) -> Result<BarrierRun, GpError> {
    barrier_with_early_exit(
        objective, ineqs, eq, y0, 1.0, opts, None, deadline, fault_key,
    )
}

/// [`barrier`] opened at an elevated initial `t0` (warm starts).
#[allow(clippy::too_many_arguments)]
fn barrier_from(
    objective: &LogSumExp,
    ineqs: &[LogSumExp],
    eq: &Matrix,
    y0: &[f64],
    t0: f64,
    opts: &BarrierOptions,
    deadline: &Deadline,
    fault_key: u64,
) -> Result<BarrierRun, GpError> {
    barrier_with_early_exit(
        objective, ineqs, eq, y0, t0, opts, None, deadline, fault_key,
    )
}

/// The barrier loop. If `exit_below` is set, returns as soon as the
/// objective value drops below it (used by phase I). The returned
/// [`BarrierRun`] carries the Newton count of every centering step and the
/// duality-gap bound `m / t` after each one.
#[allow(clippy::too_many_arguments)]
fn barrier_with_early_exit(
    objective: &LogSumExp,
    ineqs: &[LogSumExp],
    eq: &Matrix,
    y0: &[f64],
    t0: f64,
    opts: &BarrierOptions,
    exit_below: Option<f64>,
    deadline: &Deadline,
    fault_key: u64,
) -> Result<BarrierRun, GpError> {
    let m = ineqs.len();
    let mut y = y0.to_vec();
    let mut total_iters = 0;
    let mut t = t0;
    let mut status = SolveStatus::Optimal;
    let mut gaps = Vec::new();
    let mut per_center: Vec<u32> = Vec::new();
    let finish = |y: Vec<f64>, status, total_iters, per_center, gaps| BarrierRun {
        y,
        status,
        newton_iterations: total_iters,
        newton_per_center: per_center,
        gaps,
    };

    for outer in 0..opts.max_centering_steps {
        if deadline.expired() {
            return Err(GpError::Cancelled);
        }
        if thistle_fault::fire("gp.solve.diverge", fault_key) {
            return Err(GpError::NumericalFailure(
                "injected divergence in barrier loop".into(),
            ));
        }
        // The final centering (the one that takes `m/t` under `gap_tol`) is
        // known before centering, since the gap bound depends only on `t`.
        let is_final = m == 0 || (m as f64) / t < opts.gap_tol;
        let step_opts = match opts.inexact_cap {
            Some(cap) if !is_final => {
                let mut o = opts.clone();
                o.max_newton_per_center = cap.min(opts.max_newton_per_center);
                o
            }
            _ => opts.clone(),
        };
        let iters = center(
            objective, ineqs, eq, &mut y, t, &step_opts, deadline, fault_key,
        )?;
        total_iters += iters;
        per_center.push(iters as u32);
        if m > 0 {
            gaps.push(m as f64 / t);
        }
        if let Some(threshold) = exit_below {
            if objective.value(&y) < threshold {
                return Ok(finish(
                    y,
                    SolveStatus::Optimal,
                    total_iters,
                    per_center,
                    gaps,
                ));
            }
        }
        if m == 0 || (m as f64) / t < opts.gap_tol {
            return Ok(finish(y, status, total_iters, per_center, gaps));
        }
        t *= opts.mu;
        if outer == opts.max_centering_steps - 1 {
            status = SolveStatus::Inaccurate;
        }
    }
    Ok(finish(
        y,
        SolveStatus::Inaccurate,
        total_iters,
        per_center,
        gaps,
    ))
}

/// One centering step: Newton-minimize `t*F0(y) + phi(y)` subject to the
/// equality constraints, starting from a feasible `y`.
#[allow(clippy::too_many_arguments)]
fn center(
    objective: &LogSumExp,
    ineqs: &[LogSumExp],
    eq: &Matrix,
    y: &mut Vec<f64>,
    t: f64,
    opts: &BarrierOptions,
    deadline: &Deadline,
    fault_key: u64,
) -> Result<usize, GpError> {
    let n = y.len();
    let meq = eq.rows();

    // Evaluation buffers, allocated once and overwritten each iteration by
    // the compiled-form kernels (`LogSumExp::eval_into`).
    let mut scratch = LseScratch::default();
    let mut grad = vec![0.0; n];
    let mut hess = Matrix::zeros(n, n);
    let mut gi = vec![0.0; n];
    let mut hi = Matrix::zeros(n, n);

    for iter in 0..opts.max_newton_per_center {
        if deadline.expired() {
            return Err(GpError::Cancelled);
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NumericalFailure(
                "non-finite iterate in centering step".into(),
            ));
        }
        // Assemble gradient and Hessian of t*F0 + phi.
        objective.eval_into(y, &mut grad, Some(&mut hess), &mut scratch);
        for g in grad.iter_mut() {
            *g *= t;
        }
        hess.scale_in_place(t);
        for f in ineqs {
            let v = f.eval_into(y, &mut gi, Some(&mut hi), &mut scratch);
            // `!(v < 0.0)` rather than `v >= 0.0`: a NaN value must also be
            // treated as having left the feasible region.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(v < 0.0) {
                return Err(GpError::NumericalFailure(
                    "barrier iterate left the feasible region".into(),
                ));
            }
            let inv = -1.0 / v; // 1 / (-Fi) > 0
            for (gacc, &gc) in grad.iter_mut().zip(&gi) {
                *gacc += inv * gc;
            }
            // hess += inv^2 * gi gi^T + inv * Hi
            hess.add_outer(inv * inv, &gi);
            hess.add_scaled(inv, &hi);
        }

        // Solve the KKT system, escalating the ridge on failure. The chaos
        // site skips the factorization loop entirely, simulating a system
        // that stays singular at every ridge level.
        let mut dy: Option<Vec<f64>> = None;
        if !thistle_fault::fire("gp.kkt.singular", fault_key) {
            let mut ridge = opts.base_ridge;
            while ridge < 1e4 {
                let mut h = hess.clone();
                h.add_diagonal(ridge);
                let step = if meq == 0 {
                    h.cholesky_solve(&neg(&grad)).ok()
                } else {
                    solve_kkt(&h, eq, &neg(&grad)).ok()
                };
                if let Some(s) = step {
                    if s.iter().all(|v| v.is_finite()) {
                        dy = Some(s);
                        break;
                    }
                }
                ridge *= 100.0;
            }
        }
        let dy = dy.ok_or_else(|| {
            GpError::NumericalFailure("KKT system unsolvable at any ridge level".into())
        })?;

        let lambda_sq = -dot(&grad, &dy);
        if !lambda_sq.is_finite() {
            return Err(GpError::NumericalFailure(
                "non-finite Newton decrement".into(),
            ));
        }
        if lambda_sq / 2.0 <= opts.newton_tol {
            return Ok(iter);
        }

        // Backtracking line search on the barrier merit function.
        let merit = |pt: &[f64]| -> f64 {
            let mut val = t * objective.value(pt);
            for f in ineqs {
                let fv = f.value(pt);
                if fv >= 0.0 {
                    return f64::INFINITY;
                }
                val -= (-fv).ln();
            }
            val
        };
        let m0 = merit(y);
        let slope = dot(&grad, &dy); // negative
        let mut step = 1.0;
        let mut accepted = false;
        for _ in 0..70 {
            let cand = axpy(y, step, &dy);
            let mc = merit(&cand);
            if mc <= m0 + 0.25 * step * slope {
                *y = cand;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            // Progress stalled at numerical precision — treat as converged.
            return Ok(iter);
        }
        debug_assert!(n == y.len());
    }
    Ok(opts.max_newton_per_center)
}

/// Solves the KKT system `[H A^T; A 0] [dy; w] = [rhs; 0]` by dense LU.
fn solve_kkt(
    h: &Matrix,
    a: &Matrix,
    rhs: &[f64],
) -> Result<Vec<f64>, crate::linalg::SolveMatrixError> {
    let n = h.rows();
    let m = a.rows();
    let mut kkt = Matrix::zeros(n + m, n + m);
    for i in 0..n {
        for j in 0..n {
            kkt[(i, j)] = h[(i, j)];
        }
    }
    for i in 0..m {
        for j in 0..n {
            kkt[(n + i, j)] = a[(i, j)];
            kkt[(j, n + i)] = a[(i, j)];
        }
    }
    let mut full_rhs = rhs.to_vec();
    full_rhs.extend(std::iter::repeat_n(0.0, m));
    let sol = kkt.solve(&full_rhs)?;
    Ok(sol[..n].to_vec())
}

fn neg(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| -x).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::TransformedProblem;
    use thistle_expr::{Monomial, Posynomial, VarRegistry};

    fn solve(
        n: usize,
        obj: &Posynomial,
        ineqs: &[Posynomial],
        eqs: &[Monomial],
    ) -> Result<Vec<f64>, GpError> {
        let tp = TransformedProblem::new(n, obj, ineqs, eqs);
        let raw = solve_transformed(&tp, &BarrierOptions::default(), &Deadline::none())?;
        Ok(tp.to_gp_point(&raw.y))
    }

    #[test]
    fn unconstrained_monomial_tradeoff() {
        // min x + 1/x  => x = 1.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let obj = Posynomial::from_var(x) + Posynomial::from(Monomial::new(1.0, [(x, -1.0)]));
        let sol = solve(1, &obj, &[], &[]).unwrap();
        assert!((sol[0] - 1.0).abs() < 1e-5, "{sol:?}");
    }

    #[test]
    fn equality_constrained() {
        // min x + y s.t. x*y = 16  => x = y = 4.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let obj = Posynomial::from_var(x) + Posynomial::from_var(y);
        let eq = Monomial::new(1.0 / 16.0, [(x, 1.0), (y, 1.0)]);
        let sol = solve(2, &obj, &[], &[eq]).unwrap();
        assert!((sol[0] - 4.0).abs() < 1e-4, "{sol:?}");
        assert!((sol[1] - 4.0).abs() < 1e-4, "{sol:?}");
    }

    #[test]
    fn inequality_active_at_optimum() {
        // min 1/(x*y) s.t. x <= 2, y <= 3 => x=2, y=3.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let obj = Posynomial::from(Monomial::new(1.0, [(x, -1.0), (y, -1.0)]));
        let ineqs = vec![
            Posynomial::from(Monomial::new(0.5, [(x, 1.0)])),
            Posynomial::from(Monomial::new(1.0 / 3.0, [(y, 1.0)])),
        ];
        let sol = solve(2, &obj, &ineqs, &[]).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-4, "{sol:?}");
        assert!((sol[1] - 3.0).abs() < 1e-4, "{sol:?}");
    }

    #[test]
    fn per_center_counts_profile_the_barrier() {
        // Constrained problem: phase II runs several centering steps, and
        // the per-center profile must line up with the gap trajectory.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let obj = Posynomial::from(Monomial::new(1.0, [(x, -1.0), (y, -1.0)]));
        let ineqs = vec![
            Posynomial::from(Monomial::new(0.5, [(x, 1.0)])),
            Posynomial::from(Monomial::new(1.0 / 3.0, [(y, 1.0)])),
        ];
        let tp = TransformedProblem::new(2, &obj, &ineqs, &[]);
        let raw = solve_transformed(&tp, &BarrierOptions::default(), &Deadline::none()).unwrap();
        assert!(!raw.newton_per_center.is_empty());
        assert_eq!(raw.newton_per_center.len(), raw.gap_trajectory.len());
        let phase_two: usize = raw.newton_per_center.iter().map(|&i| i as usize).sum();
        assert!(phase_two <= raw.newton_iterations);
    }

    #[test]
    fn infeasible_is_detected() {
        // x <= 1 and x >= 2 simultaneously.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let ineqs = vec![
            Posynomial::from(Monomial::new(1.0, [(x, 1.0)])), // x <= 1
            Posynomial::from(Monomial::new(2.0, [(x, -1.0)])), // 2/x <= 1 => x >= 2
        ];
        let err = solve(1, &Posynomial::from_var(x), &ineqs, &[]).unwrap_err();
        assert_eq!(err, GpError::Infeasible);
    }

    #[test]
    fn phase_one_needed_and_succeeds() {
        // Start point (x=1) violates x >= 10; optimum at x = 10.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let ineqs = vec![Posynomial::from(Monomial::new(10.0, [(x, -1.0)]))];
        let sol = solve(1, &Posynomial::from_var(x), &ineqs, &[]).unwrap();
        assert!((sol[0] - 10.0).abs() < 1e-3, "{sol:?}");
    }
}
