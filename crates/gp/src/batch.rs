//! Batched lockstep solver: up to [`LANES`] structurally identical GPs
//! solved as one operation.
//!
//! The permutation sweep produces structural classes — problems whose
//! log-space lowerings share one CSR sparsity pattern and differ only in
//! exponent/offset *values*. [`BatchProblem::compile`] verifies that sharing
//! exactly (signature collisions fall back to per-lane scalar solves) and
//! interleaves the class's values into [`SoaCsr`] stores;
//! [`BatchProblem::solve_batch`] then runs one barrier iteration for all
//! lanes in lockstep:
//!
//! * every LogSumExp value/gradient/Hessian evaluation traverses the shared
//!   structure **once** and accumulates [`LANES`]-wide `f64` arrays the
//!   autovectorizer lowers to SIMD;
//! * the KKT systems of all lanes share one pivot ordering
//!   ([`KktWorkspace`]): the first factorization records its partial-pivot
//!   order, subsequent lanes/iterations replay it without the pivot search,
//!   refactoring fresh only when a replayed pivot loses too much magnitude;
//! * the batch runs an aggressive warm-style barrier schedule (`mu²` with an
//!   inexact-centering cap) and, when the caller supplies a neighbor's
//!   optimum, warm-starts every lane from it (the warm chain of the sweep).
//!
//! **Containment:** lanes are numerically independent — every arithmetic op
//! is lane-diagonal — so one lane going non-finite cannot poison its
//! classmates. A lane that fails organically (numerics, infeasibility) is
//! re-solved through the authoritative scalar recovery ladder
//! ([`solve_transformed`]), making its result bit-identical to a sequential
//! solve of that member. The `gp.batch.lane` fault site kills exactly one
//! lane *without* fallback, which is what the chaos suite uses to prove
//! classmate isolation.
//!
//! The lockstep result itself is a *screening* answer: it converges to the
//! caller's gap tolerance but follows a different (shorter) central path
//! than a cold scalar solve, so its bits differ. Callers that need
//! bit-identical answers (winner selection in the sweep) re-solve the few
//! members that matter through the scalar path — see
//! `thistle-core`'s sweep for the screen-then-confirm protocol.

// Lane-diagonal kernels index several interleaved arrays by the same lane
// counter; clippy's iterator rewrite would hide the lockstep structure the
// autovectorizer relies on.
#![allow(clippy::needless_range_loop)]

use crate::deadline::Deadline;
use crate::linalg::{axpy, dot, norm2, Matrix};
use crate::problem::{cold_barrier_options, GpProblem, SolveOptions};
use crate::solver::{
    solve_transformed, warm_t0, BarrierOptions, GpError, RecoveryInfo, Solution, SolveStatus,
    WarmInfo, WARM_INEXACT_CAP, WARM_PHASE1_MARGIN, WARM_PHASE1_T0,
};
use crate::transform::{LogSumExp, TransformedProblem};
use std::panic::{catch_unwind, AssertUnwindSafe};
use thistle_expr::{Assignment, SignatureBuilder, SoaCsr, StructuralSignature, LANES};

/// The structural signature of a GP: dimensionality plus the variable-index
/// pattern of every objective/inequality term and every equality, with
/// exponent values and coefficients excluded. Problems with equal signatures
/// are candidates for one [`BatchProblem`] structural class.
pub fn structural_signature(p: &GpProblem) -> StructuralSignature {
    let mut sb = SignatureBuilder::new();
    sb.push_u64(p.registry().len() as u64);
    match p.objective() {
        Some(obj) => sb.push_posynomial_pattern(obj),
        None => sb.push_u64(u64::MAX),
    }
    sb.push_u64(p.inequalities().len() as u64);
    for g in p.inequalities() {
        sb.push_posynomial_pattern(g);
    }
    sb.push_u64(p.equalities().len() as u64);
    for m in p.equalities() {
        sb.push_monomial_pattern(m);
    }
    sb.finish()
}

/// The content fingerprint of a GP: a 128-bit hash over every coefficient
/// and exponent *bit pattern*, every variable index, and the exact term and
/// constraint order. Two problems with equal fingerprints are (modulo a
/// ~2^-128 collision) byte-identical inputs to the solver, and the solver is
/// deterministic, so their solutions are bit-identical. The sweep's
/// duplicate-elimination tier keys on this: permutation pairs routinely
/// lower to the *same* GP (loop symmetries the class pruner cannot see),
/// and one exact solve serves every duplicate with perfect fidelity.
///
/// Equal fingerprints imply equal [`structural_signature`]s; the converse
/// does not hold (structural classmates may differ in exponent values).
pub fn content_fingerprint(p: &GpProblem) -> (u64, u64) {
    // Two independent FNV-1a streams with distinct offset bases; together
    // they behave as one 128-bit fingerprint.
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x6c62_272e_07bb_0142;
    let mut put = |v: u64| {
        h1 = (h1 ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        h2 = (h2 ^ v.rotate_left(17)).wrapping_mul(0x0000_0100_0000_01b3);
    };
    let put_posynomial = |put: &mut dyn FnMut(u64), g: &thistle_expr::Posynomial| {
        for (c, m) in g.terms() {
            put(c.to_bits());
            for (v, a) in m.powers() {
                put(v.index() as u64);
                put(a.to_bits());
            }
            put(u64::MAX); // term separator
        }
        put(u64::MAX - 1); // posynomial separator
    };
    put(p.registry().len() as u64);
    match p.objective() {
        Some(obj) => put_posynomial(&mut put, obj),
        None => put(u64::MAX - 3),
    }
    for g in p.inequalities() {
        put_posynomial(&mut put, g);
    }
    for m in p.equalities() {
        for (v, a) in m.powers() {
            put(v.index() as u64);
            put(a.to_bits());
        }
        put(u64::MAX - 2); // equality separator
    }
    (h1, h2)
}

/// One member's result from [`BatchProblem::solve_batch`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// The member's solution or error — for organic lockstep failures this
    /// is the authoritative scalar-ladder result, bit-identical to a
    /// sequential solve of the member.
    pub result: Result<Solution, GpError>,
    /// Whether the lockstep engine produced the result (`false`: scalar
    /// fallback or injected failure).
    pub lockstep: bool,
}

/// Up to [`LANES`] GPs compiled for one lockstep solve.
///
/// `compile` lowers every member ([`TransformedProblem`]) and, when all
/// members share the exact CSR structure (verified per row, not just by
/// signature), builds the interleaved SoA stores the lockstep engine runs
/// on. Members that do not share structure still solve — `solve_batch`
/// routes them through the scalar path per lane.
pub struct BatchProblem<'p> {
    problems: Vec<&'p GpProblem>,
    tps: Vec<Option<TransformedProblem>>,
    shared: Option<Shared>,
    n: usize,
}

/// The interleaved structures of a verified structural class.
struct Shared {
    objective: BatchLse,
    inequalities: Vec<BatchLse>,
}

impl<'p> BatchProblem<'p> {
    /// Lowers `problems` (1 to [`LANES`] of them) into one batch.
    ///
    /// Members without an objective get a per-lane `InvalidProblem` outcome
    /// at solve time rather than failing the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `problems` is empty or has more than [`LANES`] members.
    pub fn compile(problems: &[&'p GpProblem]) -> Self {
        assert!(
            !problems.is_empty() && problems.len() <= LANES,
            "BatchProblem takes 1..={LANES} members, got {}",
            problems.len()
        );
        let tps: Vec<Option<TransformedProblem>> = problems
            .iter()
            .map(|p| {
                p.objective().map(|obj| {
                    TransformedProblem::new(
                        p.registry().len(),
                        obj,
                        p.inequalities(),
                        p.equalities(),
                    )
                })
            })
            .collect();
        let n = problems[0].registry().len();
        let shared = Self::verify_shared(&tps, n);
        BatchProblem {
            problems: problems.to_vec(),
            tps,
            shared,
            n,
        }
    }

    /// Number of members.
    pub fn width(&self) -> usize {
        self.problems.len()
    }

    /// Whether the members verified as one structural class (lockstep runs;
    /// `false` means every lane solves through the scalar path).
    pub fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    fn verify_shared(tps: &[Option<TransformedProblem>], n: usize) -> Option<Shared> {
        let first = tps.first()?.as_ref()?;
        if first.n != n {
            return None;
        }
        let mut lanes: Vec<&TransformedProblem> = Vec::with_capacity(tps.len());
        for tp in tps {
            let tp = tp.as_ref()?;
            if tp.n != n
                || tp.inequalities.len() != first.inequalities.len()
                || tp.eq_matrix.rows() != first.eq_matrix.rows()
            {
                return None;
            }
            lanes.push(tp);
        }
        let objective =
            BatchLse::from_lanes(&lanes.iter().map(|tp| &tp.objective).collect::<Vec<_>>())?;
        let mut inequalities = Vec::with_capacity(first.inequalities.len());
        for k in 0..first.inequalities.len() {
            let ineq = BatchLse::from_lanes(
                &lanes
                    .iter()
                    .map(|tp| &tp.inequalities[k])
                    .collect::<Vec<_>>(),
            )?;
            inequalities.push(ineq);
        }
        Some(Shared {
            objective,
            inequalities,
        })
    }

    /// Solves every member. `warm` optionally supplies a donor optimum (GP
    /// space, length `n`) — typically the previous group's winner in a
    /// warm chain — from which all lanes warm-start.
    ///
    /// Per-member semantics:
    /// * lockstep success → screening-grade [`Solution`] (`lockstep: true`);
    /// * organic lockstep failure → authoritative scalar recovery-ladder
    ///   solve of that member (`lockstep: false`), classmates unaffected;
    /// * `gp.batch.lane` fault injected for the member's lane index →
    ///   `NumericalFailure` with **no** fallback (`lockstep: false`);
    /// * deadline expiry → `Cancelled` for the remaining members.
    pub fn solve_batch(
        &self,
        options: &SolveOptions,
        warm: Option<&[f64]>,
        deadline: &Deadline,
    ) -> Vec<BatchOutcome> {
        let w = self.width();
        let injected: Vec<bool> = (0..w)
            .map(|l| thistle_fault::fire("gp.batch.lane", l as u64))
            .collect();
        let mut out: Vec<Option<BatchOutcome>> = (0..w).map(|_| None).collect();
        for (l, &inj) in injected.iter().enumerate() {
            if inj {
                out[l] = Some(BatchOutcome {
                    result: Err(GpError::NumericalFailure(
                        "injected batch lane failure".into(),
                    )),
                    lockstep: false,
                });
            }
        }

        if let Some(shared) = &self.shared {
            // A panic anywhere in the lockstep kernels must not take down
            // the batch: fall through to per-member scalar solves.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                self.lockstep_attempt(shared, options, warm, deadline, &injected)
            }));
            match attempt {
                Ok(Ok(lanes)) => {
                    for (l, lane) in lanes.into_iter().enumerate().take(w) {
                        if out[l].is_some() {
                            continue;
                        }
                        match lane {
                            Some(Ok(sol)) => {
                                out[l] = Some(BatchOutcome {
                                    result: Ok(sol),
                                    lockstep: true,
                                });
                            }
                            Some(Err(GpError::Cancelled)) => {
                                out[l] = Some(BatchOutcome {
                                    result: Err(GpError::Cancelled),
                                    lockstep: false,
                                });
                            }
                            // Organic failure or structural trouble: the
                            // scalar pass below is authoritative.
                            Some(Err(_)) | None => {}
                        }
                    }
                }
                Ok(Err(GpError::Cancelled)) | Err(_) => {
                    // Global cancellation, or a lockstep panic. The scalar
                    // pass below settles every undecided lane (and reports
                    // `Cancelled` itself once the deadline is checked).
                }
                Ok(Err(_)) => {}
            }
        }

        out.into_iter()
            .enumerate()
            .map(|(l, slot)| match slot {
                Some(outcome) => outcome,
                None => BatchOutcome {
                    result: self.scalar_member(l, options, deadline),
                    lockstep: false,
                },
            })
            .collect()
    }

    /// The sequential cold path for member `l` on the precompiled lowering —
    /// bit-identical to `GpProblem::solve` of that member.
    fn scalar_member(
        &self,
        l: usize,
        options: &SolveOptions,
        deadline: &Deadline,
    ) -> Result<Solution, GpError> {
        let Some(tp) = self.tps[l].as_ref() else {
            return Err(GpError::InvalidProblem("no objective set".into()));
        };
        let objective = self.problems[l]
            .objective()
            .expect("tp exists only with an objective");
        let raw = solve_transformed(tp, &cold_barrier_options(options), deadline)?;
        let assignment = Assignment::from_values(tp.to_gp_point(&raw.y));
        let objective_value = objective.eval(&assignment);
        Ok(Solution {
            assignment,
            objective: objective_value,
            status: raw.status,
            newton_iterations: raw.newton_iterations,
            newton_per_center: raw.newton_per_center,
            gap_trajectory: raw.gap_trajectory,
            recovery: raw.recovery,
            warm: WarmInfo::default(),
        })
    }

    /// One lockstep run over all non-skipped lanes. Outer `Err` is global
    /// (`Cancelled`); per-lane slots report individual outcomes (`None` for
    /// skipped lanes).
    #[allow(clippy::type_complexity)]
    fn lockstep_attempt(
        &self,
        shared: &Shared,
        options: &SolveOptions,
        warm: Option<&[f64]>,
        deadline: &Deadline,
        skip: &[bool],
    ) -> Result<Vec<Option<Result<Solution, GpError>>>, GpError> {
        let n = self.n;
        let w = self.width();
        let m = shared.inequalities.len();
        let base = cold_barrier_options(options);
        // The engine schedule: `mu²` with inexact intermediate centerings —
        // the same aggressive path the scalar warm solver runs, applied to
        // cold lanes too (screening answers tolerate the shorter path).
        let eng = BarrierOptions {
            mu: base.mu * base.mu,
            inexact_cap: Some(WARM_INEXACT_CAP),
            ..base.clone()
        };

        let mut ctl: Vec<LaneCtl> = (0..LANES).map(|_| LaneCtl::default()).collect();
        let mut active = [false; LANES];
        for l in 0..w {
            active[l] = !skip[l] && self.tps[l].is_some();
        }

        // Warm donor: ln(x) must be finite for every component, else the
        // whole group runs cold.
        let yln: Option<Vec<f64>> = warm.and_then(|x| {
            if x.len() != n {
                return None;
            }
            let v: Vec<f64> = x.iter().map(|&xv| xv.ln()).collect();
            v.iter().all(|c| c.is_finite()).then_some(v)
        });
        let warm_ok = yln.is_some();

        // Per-lane initial points on each lane's equality manifold.
        let mut ys = vec![0.0; n * LANES];
        for l in 0..w {
            if !active[l] {
                continue;
            }
            let tp = self.tps[l].as_ref().expect("active lane has a lowering");
            let meq = tp.eq_matrix.rows();
            let y0 = if meq == 0 {
                yln.clone().unwrap_or_else(|| vec![0.0; n])
            } else {
                let init = match &yln {
                    Some(y) => {
                        // Project the donor onto this lane's manifold with a
                        // plain min-norm correction (screening does not need
                        // the scalar warm path's sensitivity weighting — any
                        // residual infeasibility routes through the warm
                        // phase I below).
                        let r = axpy(&tp.eq_matrix.matvec(y), -1.0, &tp.eq_rhs);
                        tp.eq_matrix
                            .min_norm_solution(&r)
                            .map(|d| axpy(y, -1.0, &d))
                    }
                    None => tp.eq_matrix.min_norm_solution(&tp.eq_rhs),
                };
                match init {
                    Ok(y0) => {
                        let r = axpy(&tp.eq_matrix.matvec(&y0), -1.0, &tp.eq_rhs);
                        if norm2(&r) > 1e-6 * (1.0 + norm2(&tp.eq_rhs)) {
                            ctl[l].fail(GpError::Infeasible);
                            active[l] = false;
                            continue;
                        }
                        y0
                    }
                    Err(e) => {
                        ctl[l].fail(GpError::NumericalFailure(format!("equality init: {e}")));
                        active[l] = false;
                        continue;
                    }
                }
            };
            for i in 0..n {
                ys[i * LANES + l] = y0[i];
            }
        }

        let eqs: Vec<&Matrix> = (0..LANES)
            .map(|l| {
                let src = if l < w && self.tps[l].is_some() { l } else { 0 };
                &self.tps[src]
                    .as_ref()
                    .expect("lane 0 lowering exists")
                    .eq_matrix
            })
            .collect();

        let mut buf = LockstepBuffers::new(n, m);
        let mut kkt = KktWorkspace::default();

        // Phase I for lanes whose start point is not strictly feasible.
        if m > 0 {
            let mut worst = [f64::NEG_INFINITY; LANES];
            let mut vals = [0.0; LANES];
            for f in &shared.inequalities {
                f.values_into(&ys, &mut buf.scratch, &mut vals);
                for l in 0..LANES {
                    worst[l] = worst[l].max(vals[l]);
                }
            }
            let threshold = if warm_ok { -1e-9 } else { -1e-6 };
            let mut need = [false; LANES];
            for (l, nd) in need.iter_mut().enumerate() {
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                {
                    *nd = active[l] && !(worst[l] < threshold);
                }
            }
            if need.iter().any(|&b| b) {
                let (s_margin, t0) = if warm_ok {
                    (WARM_PHASE1_MARGIN, WARM_PHASE1_T0)
                } else {
                    (1.0, 1.0)
                };
                let obj_ext = BatchLse::slack_objective(n);
                let ineqs_ext: Vec<BatchLse> = shared
                    .inequalities
                    .iter()
                    .map(|f| f.with_slack_column())
                    .collect();
                let eqs_ext: Vec<Matrix> = eqs
                    .iter()
                    .map(|eq| {
                        let mut ext = Matrix::zeros(eq.rows(), n + 1);
                        for i in 0..eq.rows() {
                            for j in 0..n {
                                ext[(i, j)] = eq[(i, j)];
                            }
                        }
                        ext
                    })
                    .collect();
                let eq_refs: Vec<&Matrix> = eqs_ext.iter().collect();
                let mut zs = vec![0.0; (n + 1) * LANES];
                for i in 0..n {
                    for l in 0..LANES {
                        zs[i * LANES + l] = ys[i * LANES + l];
                    }
                }
                for l in 0..LANES {
                    zs[n * LANES + l] = if worst[l].is_finite() {
                        worst[l] + s_margin
                    } else {
                        s_margin
                    };
                }
                let mut p1_opts = eng.clone();
                p1_opts.gap_tol = 1e-6;
                let mut p1_buf = LockstepBuffers::new(n + 1, m);
                let mut p1_kkt = KktWorkspace::default();
                let mut run = need;
                lockstep_barrier(
                    &obj_ext,
                    &ineqs_ext,
                    &eq_refs,
                    &mut zs,
                    t0,
                    &p1_opts,
                    Some(-1e-4),
                    &mut run,
                    &mut ctl,
                    &mut p1_kkt,
                    deadline,
                    &mut p1_buf,
                    false,
                )?;
                for l in 0..LANES {
                    if !need[l] || !active[l] {
                        continue;
                    }
                    if ctl[l].error.is_some() {
                        active[l] = false;
                        continue;
                    }
                    let s = zs[n * LANES + l];
                    if s >= -1e-9 {
                        ctl[l].fail(GpError::Infeasible);
                        active[l] = false;
                        continue;
                    }
                    for i in 0..n {
                        ys[i * LANES + l] = zs[i * LANES + l];
                    }
                }
            }
        }

        // Phase II, warm-opened when a donor was usable.
        let t0 = if warm_ok {
            warm_t0(m, &base, eng.mu)
        } else {
            1.0
        };
        let mut run = active;
        lockstep_barrier(
            &shared.objective,
            &shared.inequalities,
            &eqs,
            &mut ys,
            t0,
            &eng,
            None,
            &mut run,
            &mut ctl,
            &mut kkt,
            deadline,
            &mut buf,
            true,
        )?;
        for l in 0..LANES {
            if active[l] && ctl[l].error.is_some() {
                active[l] = false;
            }
        }

        let mut lanes: Vec<Option<Result<Solution, GpError>>> = Vec::with_capacity(w);
        for l in 0..w {
            if skip[l] {
                lanes.push(None);
                continue;
            }
            let Some(tp) = self.tps[l].as_ref() else {
                lanes.push(Some(Err(GpError::InvalidProblem(
                    "no objective set".into(),
                ))));
                continue;
            };
            let c = &mut ctl[l];
            if let Some(e) = c.error.take() {
                lanes.push(Some(Err(e)));
                continue;
            }
            let y: Vec<f64> = (0..n).map(|i| ys[i * LANES + l]).collect();
            let assignment = Assignment::from_values(tp.to_gp_point(&y));
            let objective = self.problems[l]
                .objective()
                .expect("lowered lane has an objective")
                .eval(&assignment);
            lanes.push(Some(Ok(Solution {
                assignment,
                objective,
                status: c.status,
                newton_iterations: c.newton,
                newton_per_center: std::mem::take(&mut c.per_center),
                gap_trajectory: std::mem::take(&mut c.gaps),
                recovery: RecoveryInfo {
                    attempts: 1,
                    recovered_by: None,
                },
                warm: WarmInfo {
                    warm_started: warm_ok,
                    reuse: Default::default(),
                },
            })));
        }
        Ok(lanes)
    }
}

/// Per-lane bookkeeping across the lockstep phases.
#[derive(Debug, Default)]
struct LaneCtl {
    error: Option<GpError>,
    newton: usize,
    per_center: Vec<u32>,
    gaps: Vec<f64>,
    status: SolveStatus,
}

impl LaneCtl {
    fn fail(&mut self, e: GpError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }
}

/// Reusable lane-interleaved buffers for the lockstep kernels.
struct LockstepBuffers {
    scratch: BatchScratch,
    grads: Vec<f64>,
    hess: Vec<f64>,
    gi: Vec<f64>,
    hi: Vec<f64>,
    lane_grads: Vec<Vec<f64>>,
    lane_hess: Matrix,
    cand: Vec<f64>,
}

impl LockstepBuffers {
    fn new(n: usize, _m: usize) -> Self {
        LockstepBuffers {
            scratch: BatchScratch::default(),
            grads: vec![0.0; n * LANES],
            hess: vec![0.0; n * n * LANES],
            gi: vec![0.0; n * LANES],
            hi: vec![0.0; n * n * LANES],
            lane_grads: (0..LANES).map(|_| vec![0.0; n]).collect(),
            lane_hess: Matrix::zeros(n, n),
            cand: vec![0.0; n * LANES],
        }
    }
}

/// The lockstep barrier loop over the lanes in `run` (cleared per lane on
/// failure or early exit, failures also recorded in `ctl`). `record` gates
/// the per-center / gap-trajectory bookkeeping (phase II only, mirroring the
/// scalar solver). Outer `Err` is global cancellation.
#[allow(clippy::too_many_arguments)]
fn lockstep_barrier(
    obj: &BatchLse,
    ineqs: &[BatchLse],
    eqs: &[&Matrix],
    ys: &mut [f64],
    t0: f64,
    opts: &BarrierOptions,
    exit_below: Option<f64>,
    run: &mut [bool; LANES],
    ctl: &mut [LaneCtl],
    kkt: &mut KktWorkspace,
    deadline: &Deadline,
    buf: &mut LockstepBuffers,
    record: bool,
) -> Result<(), GpError> {
    let m = ineqs.len();
    let mut t = t0;
    for outer in 0..opts.max_centering_steps {
        if deadline.expired() {
            return Err(GpError::Cancelled);
        }
        if !run.iter().any(|&b| b) {
            return Ok(());
        }
        let is_final = m == 0 || (m as f64) / t < opts.gap_tol;
        let cap = match opts.inexact_cap {
            Some(c) if !is_final => c.min(opts.max_newton_per_center),
            _ => opts.max_newton_per_center,
        };
        let iters = lockstep_center(
            obj, ineqs, eqs, ys, t, cap, opts, run, ctl, kkt, deadline, buf,
        )?;
        for l in 0..LANES {
            if ctl[l].error.is_some() {
                continue;
            }
            if run[l] || iters[l] > 0 {
                ctl[l].newton += iters[l] as usize;
                if record && run[l] {
                    ctl[l].per_center.push(iters[l]);
                    if m > 0 {
                        ctl[l].gaps.push(m as f64 / t);
                    }
                }
            }
        }
        if let Some(threshold) = exit_below {
            let mut vals = [0.0; LANES];
            obj.values_into(ys, &mut buf.scratch, &mut vals);
            for l in 0..LANES {
                if run[l] && vals[l] < threshold {
                    run[l] = false; // lane done, successfully
                }
            }
        }
        if m == 0 || (m as f64) / t < opts.gap_tol {
            return Ok(()); // remaining lanes converged at the current status
        }
        t *= opts.mu;
        if outer == opts.max_centering_steps - 1 {
            for l in 0..LANES {
                if run[l] {
                    ctl[l].status = SolveStatus::Inaccurate;
                }
            }
        }
    }
    Ok(())
}

/// One lockstep centering step: Newton-minimize `t·F0 + φ` per lane, all
/// lanes sharing structure traversal and the KKT pivot order. Lanes converge
/// (and freeze) independently; per-lane iteration counts are returned.
/// Failing lanes are recorded in `ctl` and dropped from `run`.
#[allow(clippy::too_many_arguments)]
fn lockstep_center(
    obj: &BatchLse,
    ineqs: &[BatchLse],
    eqs: &[&Matrix],
    ys: &mut [f64],
    t: f64,
    cap: usize,
    opts: &BarrierOptions,
    run: &mut [bool; LANES],
    ctl: &mut [LaneCtl],
    kkt: &mut KktWorkspace,
    deadline: &Deadline,
    buf: &mut LockstepBuffers,
) -> Result<[u32; LANES], GpError> {
    let n = obj.n;
    let mut searching = *run;
    let mut iters = [0u32; LANES];
    let mut dys: [Option<Vec<f64>>; LANES] = Default::default();

    let fail = |ctl: &mut [LaneCtl],
                run: &mut [bool; LANES],
                searching: &mut [bool; LANES],
                l: usize,
                e: GpError| {
        ctl[l].fail(e);
        run[l] = false;
        searching[l] = false;
    };

    for iter in 0..cap {
        if deadline.expired() {
            return Err(GpError::Cancelled);
        }
        for l in 0..LANES {
            if searching[l] && (0..n).any(|i| !ys[i * LANES + l].is_finite()) {
                fail(
                    ctl,
                    run,
                    &mut searching,
                    l,
                    GpError::NumericalFailure("non-finite iterate in centering step".into()),
                );
            }
        }
        if !searching.iter().any(|&b| b) {
            break;
        }

        // Assemble ∇(t·F0 + φ) and its Hessian, all lanes at once.
        let mut vals = [0.0; LANES];
        obj.eval_into(
            ys,
            &mut buf.grads,
            Some(&mut buf.hess),
            &mut buf.scratch,
            &mut vals,
        );
        for g in buf.grads.iter_mut() {
            *g *= t;
        }
        for h in buf.hess.iter_mut() {
            *h *= t;
        }
        let mut fvals = [0.0; LANES];
        for f in ineqs {
            f.eval_into(
                ys,
                &mut buf.gi,
                Some(&mut buf.hi),
                &mut buf.scratch,
                &mut fvals,
            );
            for l in 0..LANES {
                if !searching[l] {
                    continue;
                }
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(fvals[l] < 0.0) {
                    fail(
                        ctl,
                        run,
                        &mut searching,
                        l,
                        GpError::NumericalFailure(
                            "barrier iterate left the feasible region".into(),
                        ),
                    );
                }
            }
            // inv = 1/(-Fi); grad += inv·gi, hess += inv²·gi·giᵀ + inv·Hi.
            // Dead lanes accumulate garbage in their own slots only — every
            // operation is lane-diagonal, so classmates are untouched.
            let mut inv = [0.0; LANES];
            for l in 0..LANES {
                inv[l] = -1.0 / fvals[l];
            }
            for i in 0..n {
                for l in 0..LANES {
                    buf.grads[i * LANES + l] += inv[l] * buf.gi[i * LANES + l];
                }
            }
            for i in 0..n {
                for j in 0..n {
                    let hidx = (i * n + j) * LANES;
                    for l in 0..LANES {
                        buf.hess[hidx + l] +=
                            inv[l] * inv[l] * buf.gi[i * LANES + l] * buf.gi[j * LANES + l];
                    }
                }
            }
            // The inv·Hi accumulation (separate pass to mirror the scalar
            // add_outer-then-add_scaled order).
            for i in 0..n {
                for j in 0..n {
                    let hidx = (i * n + j) * LANES;
                    for l in 0..LANES {
                        buf.hess[hidx + l] += inv[l] * buf.hi[hidx + l];
                    }
                }
            }
        }

        // Per-lane Newton step through the shared-pivot KKT solve.
        for l in 0..LANES {
            if !searching[l] {
                dys[l] = None;
                continue;
            }
            let lg = &mut buf.lane_grads[l];
            for i in 0..n {
                lg[i] = buf.grads[i * LANES + l];
            }
            for i in 0..n {
                for j in 0..n {
                    buf.lane_hess[(i, j)] = buf.hess[(i * n + j) * LANES + l];
                }
            }
            let neg_grad: Vec<f64> = lg.iter().map(|&g| -g).collect();
            let mut dy: Option<Vec<f64>> = None;
            let mut ridge = opts.base_ridge;
            while ridge < 1e4 {
                let mut h = buf.lane_hess.clone();
                h.add_diagonal(ridge);
                let step = if eqs[l].rows() == 0 {
                    h.cholesky_solve(&neg_grad).ok()
                } else {
                    kkt.solve(n, &h, eqs[l], &neg_grad)
                };
                if let Some(s) = step {
                    if s.iter().all(|v| v.is_finite()) {
                        dy = Some(s);
                        break;
                    }
                }
                ridge *= 100.0;
            }
            let Some(dy) = dy else {
                fail(
                    ctl,
                    run,
                    &mut searching,
                    l,
                    GpError::NumericalFailure("KKT system unsolvable at any ridge level".into()),
                );
                dys[l] = None;
                continue;
            };
            let lambda_sq = -dot(&buf.lane_grads[l], &dy);
            if !lambda_sq.is_finite() {
                fail(
                    ctl,
                    run,
                    &mut searching,
                    l,
                    GpError::NumericalFailure("non-finite Newton decrement".into()),
                );
                dys[l] = None;
                continue;
            }
            if lambda_sq / 2.0 <= opts.newton_tol {
                searching[l] = false; // converged; stays in the barrier run
                iters[l] = iter as u32;
                dys[l] = None;
                continue;
            }
            dys[l] = Some(dy);
        }

        // Batched backtracking line search on the per-lane barrier merit.
        let need: [bool; LANES] = std::array::from_fn(|l| dys[l].is_some());
        if !need.iter().any(|&b| b) {
            continue;
        }
        let mut m0 = [0.0; LANES];
        merit_into(obj, ineqs, t, ys, &mut buf.scratch, &mut m0);
        let mut slope = [0.0; LANES];
        for l in 0..LANES {
            if let Some(dy) = &dys[l] {
                slope[l] = dot(&buf.lane_grads[l], dy);
            }
        }
        let mut step = [1.0f64; LANES];
        let mut pending = need;
        for _ in 0..70 {
            if !pending.iter().any(|&b| b) {
                break;
            }
            for i in 0..n {
                for l in 0..LANES {
                    let base = ys[i * LANES + l];
                    buf.cand[i * LANES + l] = match (&pending[l], &dys[l]) {
                        (true, Some(dy)) => base + step[l] * dy[i],
                        _ => base,
                    };
                }
            }
            let mut mc = [0.0; LANES];
            merit_into(obj, ineqs, t, &buf.cand, &mut buf.scratch, &mut mc);
            for l in 0..LANES {
                if !pending[l] {
                    continue;
                }
                if mc[l] <= m0[l] + 0.25 * step[l] * slope[l] {
                    for i in 0..n {
                        ys[i * LANES + l] = buf.cand[i * LANES + l];
                    }
                    pending[l] = false;
                } else {
                    step[l] *= 0.5;
                }
            }
        }
        for l in 0..LANES {
            if pending[l] {
                // Progress stalled at numerical precision — converged.
                searching[l] = false;
                iters[l] = iter as u32;
            }
        }
    }
    for l in 0..LANES {
        if searching[l] {
            iters[l] = cap as u32;
        }
    }
    Ok(iters)
}

/// The barrier merit `t·F0(y) + Σ -ln(-Fi(y))` for all lanes in one
/// structure pass (`+∞` per lane on boundary/violated constraints).
fn merit_into(
    obj: &BatchLse,
    ineqs: &[BatchLse],
    t: f64,
    ys: &[f64],
    scratch: &mut BatchScratch,
    out: &mut [f64; LANES],
) {
    let mut vals = [0.0; LANES];
    obj.values_into(ys, scratch, &mut vals);
    for l in 0..LANES {
        out[l] = t * vals[l];
    }
    for f in ineqs {
        f.values_into(ys, scratch, &mut vals);
        for l in 0..LANES {
            if vals[l] >= 0.0 {
                out[l] = f64::INFINITY;
            } else {
                out[l] -= (-vals[l]).ln();
            }
        }
    }
}

/// Scratch for the lane-interleaved LogSumExp kernels.
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    gs: Vec<f64>,
    ws: Vec<f64>,
}

/// A LogSumExp over up to [`LANES`] lanes sharing one CSR structure, with
/// values and offsets lane-interleaved. The batched counterpart of
/// [`LogSumExp`], evaluating every lane in one pass over the structure.
pub(crate) struct BatchLse {
    csr: SoaCsr,
    /// `num_terms * LANES`, lane-interleaved `log c_k`.
    offsets: Vec<f64>,
    /// Sorted union of columns with a nonzero exponent (shared: the lanes
    /// have identical `cols`).
    live: Vec<u32>,
    n: usize,
}

impl BatchLse {
    /// Interleaves `1..=LANES` structurally identical scalar functions.
    /// Returns `None` when any lane's `row_ptr`/`cols`/dimension differs —
    /// the caller falls back to unshared solves.
    fn from_lanes(lanes: &[&LogSumExp]) -> Option<BatchLse> {
        let first = *lanes.first()?;
        let (rp0, c0, _, _, live0) = first.csr_parts();
        let n = first.dim();
        for lse in &lanes[1..] {
            let (rp, c, _, _, _) = lse.csr_parts();
            if lse.dim() != n || rp != rp0 || c != c0 {
                return None;
            }
        }
        let val_slices: Vec<&[f64]> = lanes.iter().map(|l| l.csr_parts().2).collect();
        let csr = SoaCsr::interleave(rp0, c0, n, &val_slices);
        let terms = first.num_terms();
        let mut offsets = Vec::with_capacity(terms * LANES);
        for k in 0..terms {
            for l in 0..LANES {
                let src = if l < lanes.len() { l } else { 0 };
                offsets.push(lanes[src].csr_parts().3[k]);
            }
        }
        Some(BatchLse {
            csr,
            offsets,
            live: live0.to_vec(),
            n,
        })
    }

    fn num_terms(&self) -> usize {
        self.offsets.len() / LANES
    }

    /// `F(y)` per lane.
    fn values_into(&self, ys: &[f64], scratch: &mut BatchScratch, out: &mut [f64; LANES]) {
        let terms = self.num_terms();
        scratch.gs.resize(terms * LANES, 0.0);
        self.csr.affine_into(ys, &self.offsets, &mut scratch.gs);
        let mut mx = [f64::NEG_INFINITY; LANES];
        for k in 0..terms {
            for l in 0..LANES {
                mx[l] = mx[l].max(scratch.gs[k * LANES + l]);
            }
        }
        let mut z = [0.0; LANES];
        for k in 0..terms {
            for l in 0..LANES {
                z[l] += (scratch.gs[k * LANES + l] - mx[l]).exp();
            }
        }
        for l in 0..LANES {
            out[l] = mx[l] + z[l].ln();
        }
    }

    /// The fused kernel: per-lane `F(y)` into `out`, gradients into `grads`
    /// (`n*LANES`), Hessians into `hess` (`n*n*LANES`) when given. Mirrors
    /// the scalar [`LogSumExp::eval_into`] operation order per lane.
    fn eval_into(
        &self,
        ys: &[f64],
        grads: &mut [f64],
        hess: Option<&mut [f64]>,
        scratch: &mut BatchScratch,
        out: &mut [f64; LANES],
    ) {
        let terms = self.num_terms();
        let n = self.n;
        scratch.gs.resize(terms * LANES, 0.0);
        self.csr.affine_into(ys, &self.offsets, &mut scratch.gs);
        let mut mx = [f64::NEG_INFINITY; LANES];
        for k in 0..terms {
            for l in 0..LANES {
                mx[l] = mx[l].max(scratch.gs[k * LANES + l]);
            }
        }
        scratch.ws.resize(terms * LANES, 0.0);
        let mut z = [0.0; LANES];
        for k in 0..terms {
            for l in 0..LANES {
                let w = (scratch.gs[k * LANES + l] - mx[l]).exp();
                scratch.ws[k * LANES + l] = w;
                z[l] += w;
            }
        }
        for l in 0..LANES {
            out[l] = mx[l] + z[l].ln();
        }

        grads.fill(0.0);
        for k in 0..terms {
            let cols = self.csr.row_cols(k);
            let vals = self.csr.row_vals(k);
            let mut p = [0.0; LANES];
            for l in 0..LANES {
                p[l] = scratch.ws[k * LANES + l] / z[l];
            }
            for (i, &c) in cols.iter().enumerate() {
                let c = c as usize;
                for l in 0..LANES {
                    grads[c * LANES + l] += p[l] * vals[i * LANES + l];
                }
            }
        }
        if let Some(h) = hess {
            h.fill(0.0);
            for k in 0..terms {
                let cols = self.csr.row_cols(k);
                let vals = self.csr.row_vals(k);
                let mut p = [0.0; LANES];
                for l in 0..LANES {
                    p[l] = scratch.ws[k * LANES + l] / z[l];
                }
                for (i, &ci) in cols.iter().enumerate() {
                    let ci = ci as usize;
                    let mut cv = [0.0; LANES];
                    for l in 0..LANES {
                        cv[l] = p[l] * vals[i * LANES + l];
                    }
                    for (j, &cj) in cols.iter().enumerate() {
                        let cj = cj as usize;
                        let hidx = (ci * n + cj) * LANES;
                        for l in 0..LANES {
                            h[hidx + l] += cv[l] * vals[j * LANES + l];
                        }
                    }
                }
            }
            // -grad·gradᵀ over the live columns.
            for &ci in &self.live {
                let ci = ci as usize;
                let mut cv = [0.0; LANES];
                for l in 0..LANES {
                    cv[l] = -grads[ci * LANES + l];
                }
                for &cj in &self.live {
                    let cj = cj as usize;
                    let hidx = (ci * n + cj) * LANES;
                    for l in 0..LANES {
                        h[hidx + l] += cv[l] * grads[cj * LANES + l];
                    }
                }
            }
        }
    }

    /// `Fi(y) - s` over `(y, s)` with slack column `n`: every row gains a
    /// `-1` coefficient on `s` in every lane.
    fn with_slack_column(&self) -> BatchLse {
        let terms = self.num_terms();
        let n = self.n;
        let mut row_ptr = vec![0u32];
        let mut cols = Vec::with_capacity(self.csr.cols().len() + terms);
        let mut vals = Vec::with_capacity(self.csr.vals().len() + terms * LANES);
        for k in 0..terms {
            cols.extend_from_slice(self.csr.row_cols(k));
            vals.extend_from_slice(self.csr.row_vals(k));
            cols.push(n as u32);
            vals.extend_from_slice(&[-1.0; LANES]);
            row_ptr.push(cols.len() as u32);
        }
        let mut live = self.live.clone();
        live.push(n as u32);
        BatchLse {
            csr: SoaCsr::from_interleaved(row_ptr, cols, n + 1, vals, self.csr.width()),
            offsets: self.offsets.clone(),
            live,
            n: n + 1,
        }
    }

    /// The phase-I objective `s` over `(y, s)`: one affine term selecting
    /// the slack, identical in every lane.
    fn slack_objective(n: usize) -> BatchLse {
        BatchLse {
            csr: SoaCsr::from_interleaved(vec![0, 1], vec![n as u32], n + 1, vec![1.0; LANES], 1),
            offsets: vec![0.0; LANES],
            live: vec![n as u32],
            n: n + 1,
        }
    }
}

/// Dense KKT solver with pivot-order reuse across lanes and iterations.
///
/// Every lane of a structural class assembles a KKT matrix with the same
/// sparsity/scale profile, so the partial-pivot order the first
/// factorization chooses almost always works for the rest. Replaying a
/// stored order skips the pivot search; a replayed pivot whose magnitude
/// has collapsed relative to its column (`< 1e-8 ×` the column max) aborts
/// the replay and refactors fresh, updating the stored order.
#[derive(Debug, Default)]
pub(crate) struct KktWorkspace {
    dim: usize,
    a: Vec<f64>,
    swaps: Vec<usize>,
    have_order: bool,
}

impl KktWorkspace {
    /// Solves `[H Aᵀ; A 0]·[dy; w] = [rhs; 0]`, returning `dy` (the first
    /// `n` components), or `None` when the system is singular at this ridge.
    fn solve(&mut self, n: usize, h: &Matrix, a: &Matrix, rhs: &[f64]) -> Option<Vec<f64>> {
        let meq = a.rows();
        let dim = n + meq;
        if self.dim != dim {
            self.dim = dim;
            self.have_order = false;
        }
        self.a.clear();
        self.a.resize(dim * dim, 0.0);
        for i in 0..n {
            for j in 0..n {
                self.a[i * dim + j] = h[(i, j)];
            }
        }
        for i in 0..meq {
            for j in 0..n {
                self.a[(n + i) * dim + j] = a[(i, j)];
                self.a[j * dim + (n + i)] = a[(i, j)];
            }
        }
        let mut b = vec![0.0; dim];
        b[..n].copy_from_slice(rhs);

        if self.have_order {
            let mut fac = self.a.clone();
            if lu_in_place(&mut fac, dim, &mut self.swaps, true) {
                let mut x = b.clone();
                lu_substitute(&fac, dim, &self.swaps, &mut x);
                x.truncate(n);
                return Some(x);
            }
            self.have_order = false;
        }
        let mut fac = self.a.clone();
        self.swaps.clear();
        if lu_in_place(&mut fac, dim, &mut self.swaps, false) {
            self.have_order = true;
            lu_substitute(&fac, dim, &self.swaps, &mut b);
            b.truncate(n);
            Some(b)
        } else {
            None
        }
    }
}

/// In-place LU with partial pivoting. With `reuse` the stored swap sequence
/// is replayed (no pivot search) and the factorization aborts if a replayed
/// pivot's magnitude falls below `1e-8 ×` its column max — the signal that
/// the stored order no longer fits this matrix. Without `reuse`, pivots are
/// chosen by column max and the swap sequence is recorded into `swaps`.
fn lu_in_place(a: &mut [f64], dim: usize, swaps: &mut Vec<usize>, reuse: bool) -> bool {
    if reuse && swaps.len() != dim {
        return false;
    }
    for k in 0..dim {
        let pivot_row = if reuse {
            swaps[k]
        } else {
            let mut best = k;
            let mut bv = a[k * dim + k].abs();
            for r in (k + 1)..dim {
                let v = a[r * dim + k].abs();
                if v > bv {
                    bv = v;
                    best = r;
                }
            }
            swaps.push(best);
            best
        };
        if pivot_row >= dim {
            return false;
        }
        if pivot_row != k {
            for c in 0..dim {
                a.swap(k * dim + c, pivot_row * dim + c);
            }
        }
        let piv = a[k * dim + k];
        if piv == 0.0 || !piv.is_finite() {
            return false;
        }
        if reuse {
            let mut colmax = piv.abs();
            for r in (k + 1)..dim {
                colmax = colmax.max(a[r * dim + k].abs());
            }
            if piv.abs() < 1e-8 * colmax {
                return false;
            }
        }
        for r in (k + 1)..dim {
            let f = a[r * dim + k] / piv;
            a[r * dim + k] = f;
            for c in (k + 1)..dim {
                a[r * dim + c] -= f * a[k * dim + c];
            }
        }
    }
    true
}

/// Applies the recorded permutation to `b`, then forward/back substitution
/// through the packed LU factors.
fn lu_substitute(a: &[f64], dim: usize, swaps: &[usize], b: &mut [f64]) {
    for (k, &s) in swaps.iter().enumerate() {
        if s != k {
            b.swap(k, s);
        }
    }
    for r in 1..dim {
        let mut acc = b[r];
        for c in 0..r {
            acc -= a[r * dim + c] * b[c];
        }
        b[r] = acc;
    }
    for r in (0..dim).rev() {
        let mut acc = b[r];
        for c in (r + 1)..dim {
            acc -= a[r * dim + c] * b[c];
        }
        b[r] = acc / a[r * dim + r];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thistle_expr::{Monomial, Posynomial, Var, VarRegistry};

    /// min x + y s.t. x·y >= target, box bounds — one structural class
    /// across targets.
    fn member(target: f64) -> GpProblem {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut prob = GpProblem::new(reg);
        prob.set_objective(Posynomial::from_var(x) + Posynomial::from_var(y));
        prob.add_le(
            Posynomial::from(Monomial::new(target, [(x, -1.0), (y, -1.0)])),
            Monomial::one(),
        );
        prob.add_bounds(x, 0.1, 100.0);
        prob.add_bounds(y, 0.1, 100.0);
        prob
    }

    #[test]
    fn signatures_group_and_separate() {
        let a = member(16.0);
        let b = member(24.0);
        assert_eq!(structural_signature(&a), structural_signature(&b));
        // Different structure: an extra constraint.
        let mut c = member(16.0);
        c.add_le(
            Posynomial::from(Monomial::new(
                1.0,
                [(Var::from_index(0), 1.0), (Var::from_index(1), 1.0)],
            )),
            Monomial::constant(1e4),
        );
        assert_ne!(structural_signature(&a), structural_signature(&c));
    }

    #[test]
    fn batch_matches_scalar_solutions() {
        let members: Vec<GpProblem> = [16.0, 18.0, 24.0, 40.0]
            .iter()
            .map(|&t| member(t))
            .collect();
        let refs: Vec<&GpProblem> = members.iter().collect();
        let batch = BatchProblem::compile(&refs);
        assert!(batch.is_shared(), "members form one structural class");
        let opts = SolveOptions::default();
        let outcomes = batch.solve_batch(&opts, None, &Deadline::none());
        assert_eq!(outcomes.len(), 4);
        for (i, (outcome, p)) in outcomes.iter().zip(&members).enumerate() {
            let sol = outcome
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("lane {i}: {e}"));
            assert!(outcome.lockstep, "lane {i} should solve in lockstep");
            let scalar = p.solve(&opts).unwrap();
            let scale = 1.0 + scalar.objective.abs();
            assert!(
                (sol.objective - scalar.objective).abs() < 1e-6 * scale,
                "lane {i}: lockstep {} vs scalar {}",
                sol.objective,
                scalar.objective
            );
            assert!(p.constraint_violation(&sol.assignment) < 1e-6, "lane {i}");
        }
    }

    #[test]
    fn warm_chain_reduces_iterations() {
        let members: Vec<GpProblem> = [16.0, 17.0, 18.0, 19.0]
            .iter()
            .map(|&t| member(t))
            .collect();
        let refs: Vec<&GpProblem> = members.iter().collect();
        let batch = BatchProblem::compile(&refs);
        let opts = SolveOptions::default();
        let cold = batch.solve_batch(&opts, None, &Deadline::none());
        let donor = cold[0].result.as_ref().unwrap();
        let n = 2;
        let x0: Vec<f64> = (0..n)
            .map(|i| donor.assignment.get(Var::from_index(i)))
            .collect();
        let warm = batch.solve_batch(&opts, Some(&x0), &Deadline::none());
        let cold_iters: usize = cold
            .iter()
            .map(|o| o.result.as_ref().unwrap().newton_iterations)
            .sum();
        let warm_iters: usize = warm
            .iter()
            .map(|o| o.result.as_ref().unwrap().newton_iterations)
            .sum();
        assert!(
            warm_iters < cold_iters,
            "warm chain {warm_iters} >= cold {cold_iters}"
        );
        for (o, p) in warm.iter().zip(&members) {
            let sol = o.result.as_ref().unwrap();
            assert!(sol.warm.warm_started);
            let scalar = p.solve(&opts).unwrap();
            let scale = 1.0 + scalar.objective.abs();
            assert!((sol.objective - scalar.objective).abs() < 1e-6 * scale);
        }
    }

    #[test]
    fn mixed_structure_falls_back_to_scalar() {
        let a = member(16.0);
        let mut b = member(24.0);
        b.add_le(
            Posynomial::from(Monomial::new(
                1.0,
                [(Var::from_index(0), 1.0), (Var::from_index(1), 1.0)],
            )),
            Monomial::constant(1e4),
        );
        let refs = [&a, &b];
        let batch = BatchProblem::compile(&refs);
        assert!(!batch.is_shared());
        let opts = SolveOptions::default();
        let outcomes = batch.solve_batch(&opts, None, &Deadline::none());
        for (outcome, p) in outcomes.iter().zip([&a, &b]) {
            let sol = outcome.result.as_ref().unwrap();
            assert!(!outcome.lockstep);
            let scalar = p.solve(&opts).unwrap();
            // The scalar fallback is the sequential path: bit-identical.
            assert_eq!(sol.objective.to_bits(), scalar.objective.to_bits());
        }
    }

    #[test]
    fn infeasible_lane_does_not_poison_classmates() {
        let feasible = member(16.0);
        // Structurally identical classmate, but x·y >= 2 is impossible under
        // x, y <= 1: infeasible.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut bad = GpProblem::new(reg);
        bad.set_objective(Posynomial::from_var(x) + Posynomial::from_var(y));
        bad.add_le(
            Posynomial::from(Monomial::new(2.0, [(x, -1.0), (y, -1.0)])),
            Monomial::one(),
        );
        bad.add_bounds(x, 0.1, 1.0);
        bad.add_bounds(y, 0.1, 1.0);
        let refs = [&feasible, &bad];
        let batch = BatchProblem::compile(&refs);
        assert!(batch.is_shared(), "containment must exercise lockstep");
        let opts = SolveOptions::default();
        let outcomes = batch.solve_batch(&opts, None, &Deadline::none());
        let good = outcomes[0].result.as_ref().unwrap();
        let scalar = feasible.solve(&opts).unwrap();
        let scale = 1.0 + scalar.objective.abs();
        assert!((good.objective - scalar.objective).abs() < 1e-6 * scale);
        assert_eq!(
            outcomes[1].result.as_ref().unwrap_err(),
            &GpError::Infeasible
        );
    }

    #[test]
    fn kkt_pivot_reuse_matches_fresh_factorization() {
        // A small KKT system solved twice: the second solve replays the
        // stored pivot order and must agree with the dense reference.
        let h = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let rhs = [1.0, 2.0];
        let mut ws = KktWorkspace::default();
        let first = ws.solve(2, &h, &a, &rhs).unwrap();
        assert!(ws.have_order);
        let second = ws.solve(2, &h, &a, &rhs).unwrap();
        assert_eq!(first, second);
        // Reference via the Matrix KKT path.
        let mut kkt = Matrix::zeros(3, 3);
        for i in 0..2 {
            for j in 0..2 {
                kkt[(i, j)] = h[(i, j)];
            }
        }
        kkt[(2, 0)] = 1.0;
        kkt[(0, 2)] = 1.0;
        kkt[(2, 1)] = 1.0;
        kkt[(1, 2)] = 1.0;
        let reference = kkt.solve(&[1.0, 2.0, 0.0]).unwrap();
        for i in 0..2 {
            assert!((first[i] - reference[i]).abs() < 1e-12);
        }
    }
}
