//! Small dense linear algebra: exactly what an interior-point GP solver
//! needs, and nothing more.
//!
//! Problems in this workspace have at most a few dozen variables, so all
//! routines are dense and allocation-friendly rather than tuned. Provided:
//!
//! * [`Matrix`] — row-major dense matrix with the usual products;
//! * [`Matrix::solve`] — LU with partial pivoting;
//! * [`Matrix::cholesky_solve`] — for symmetric positive-definite systems;
//! * [`Matrix::least_squares`] — Householder QR, minimum-residual solve;
//! * [`Matrix::min_norm_solution`] — minimum-norm solution of an
//!   underdetermined system (used to find a point on `Ay = b`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Error produced when a factorization or solve cannot proceed (singular or
/// non-positive-definite input).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveMatrixError {
    what: &'static str,
}

impl fmt::Display for SolveMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear solve failed: {}", self.what)
    }
}

impl std::error::Error for SolveMatrixError {}

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use thistle_gp::linalg::Matrix;
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
/// let x = a.solve(&[2.0, 8.0]).unwrap();
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Transposed matrix-vector product `A^T x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch in matvec_t");
        let mut out = vec![0.0; self.cols];
        for (xi, row) in x.iter().zip(self.data.chunks_exact(self.cols.max(1))) {
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * xi;
            }
        }
        out
    }

    /// The transpose `A^T`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Adds `c` to every diagonal entry (ridge regularization), in place.
    pub fn add_diagonal(&mut self, c: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += c;
        }
    }

    /// Multiplies every entry by `c`, in place.
    pub fn scale_in_place(&mut self, c: f64) {
        for v in &mut self.data {
            *v *= c;
        }
    }

    /// Adds `c * other` entrywise, in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, c: f64, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += c * b;
        }
    }

    /// Adds the rank-one update `c * v v^T`, in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square of size `v.len()`.
    pub fn add_outer(&mut self, c: f64, v: &[f64]) {
        assert_eq!(self.rows, v.len());
        assert_eq!(self.cols, v.len());
        for i in 0..v.len() {
            if v[i] == 0.0 {
                continue;
            }
            let cv = c * v[i];
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (r, &vj) in row.iter_mut().zip(v) {
                *r += cv * vj;
            }
        }
    }

    /// Solves `A x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is (numerically) singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveMatrixError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut piv: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Pivot selection.
            let mut best = col;
            let mut best_mag = a[piv[col] * n + col].abs();
            for (r, &pr) in piv.iter().enumerate().skip(col + 1) {
                let mag = a[pr * n + col].abs();
                if mag > best_mag {
                    best = r;
                    best_mag = mag;
                }
            }
            if best_mag < 1e-300 {
                return Err(SolveMatrixError {
                    what: "singular matrix in LU",
                });
            }
            piv.swap(col, best);
            let prow = piv[col];
            let pivot = a[prow * n + col];
            for &r in piv.iter().skip(col + 1) {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for j in col + 1..n {
                    a[r * n + j] -= factor * a[prow * n + j];
                }
                x[r] -= factor * x[prow];
            }
        }
        // Back substitution.
        let mut out = vec![0.0; n];
        for col in (0..n).rev() {
            let prow = piv[col];
            let mut s = x[prow];
            for j in col + 1..n {
                s -= a[prow * n + j] * out[j];
            }
            out[col] = s / a[prow * n + col];
        }
        Ok(out)
    }

    /// Solves the symmetric positive-definite system `A x = b` by Cholesky
    /// factorization.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is not numerically positive definite.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveMatrixError> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(SolveMatrixError {
                            what: "matrix is not positive definite",
                        });
                    }
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        // Forward: L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[i * n + k] * z[k];
            }
            z[i] = s / l[i * n + i];
        }
        // Backward: L^T x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = z[i];
            for k in i + 1..n {
                s -= l[k * n + i] * x[k];
            }
            x[i] = s / l[i * n + i];
        }
        Ok(x)
    }

    /// Least-squares solution of `A x ~ b` (for `rows >= cols`) via
    /// Householder QR.
    ///
    /// # Errors
    ///
    /// Returns an error if `A` is (numerically) rank deficient.
    ///
    /// # Panics
    ///
    /// Panics if `rows < cols` or `b.len() != rows`.
    pub fn least_squares(&self, b: &[f64]) -> Result<Vec<f64>, SolveMatrixError> {
        assert!(
            self.rows >= self.cols,
            "least_squares requires rows >= cols"
        );
        assert_eq!(b.len(), self.rows);
        let (m, n) = (self.rows, self.cols);
        let mut a = self.data.clone();
        let mut y = b.to_vec();

        for k in 0..n {
            // Householder vector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += a[i * n + k] * a[i * n + k];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                return Err(SolveMatrixError {
                    what: "rank-deficient matrix in QR",
                });
            }
            let alpha = if a[k * n + k] >= 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m];
            v[k] = a[k * n + k] - alpha;
            for i in k + 1..m {
                v[i] = a[i * n + k];
            }
            let vtv: f64 = v[k..].iter().map(|x| x * x).sum();
            if vtv < 1e-300 {
                // Column already triangular.
                a[k * n + k] = alpha;
                continue;
            }
            // Apply H = I - 2 v v^T / (v^T v) to A and y.
            for j in k..n {
                let dot: f64 = (k..m).map(|i| v[i] * a[i * n + j]).sum();
                let f = 2.0 * dot / vtv;
                for i in k..m {
                    a[i * n + j] -= f * v[i];
                }
            }
            let dot: f64 = (k..m).map(|i| v[i] * y[i]).sum();
            let f = 2.0 * dot / vtv;
            for i in k..m {
                y[i] -= f * v[i];
            }
        }
        // Back substitution on the R factor.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= a[i * n + j] * x[j];
            }
            let d = a[i * n + i];
            if d.abs() < 1e-300 {
                return Err(SolveMatrixError {
                    what: "rank-deficient matrix in QR back-substitution",
                });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Minimum-norm solution of the (typically underdetermined) system
    /// `A y = b`, computed as `y = A^T (A A^T)^{-1} b` with a small ridge for
    /// robustness against redundant rows.
    ///
    /// # Errors
    ///
    /// Returns an error if `A A^T` is singular even after regularization.
    pub fn min_norm_solution(&self, b: &[f64]) -> Result<Vec<f64>, SolveMatrixError> {
        assert_eq!(b.len(), self.rows);
        let at = self.transpose();
        let mut aat = self.matmul(&at);
        aat.add_diagonal(1e-12);
        let z = aat.cholesky_solve(b).or_else(|_| aat.solve(b))?;
        Ok(at.matvec(&z))
    }

    /// Projects `v` onto the null space of `self` by removing its row-space
    /// component: the result `p` satisfies `A p ≈ 0`, so adding it to any
    /// point on the manifold `A y = b` stays on the manifold. The solver's
    /// recovery ladder uses this to perturb restart points without
    /// violating equality constraints.
    ///
    /// # Errors
    ///
    /// Returns an error if the row-space projection (a min-norm solve on
    /// `A A^T`) fails.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn project_out_rowspace(&self, v: &[f64]) -> Result<Vec<f64>, SolveMatrixError> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in projection");
        let rowspace_part = self.min_norm_solution(&self.matvec(v))?;
        Ok(axpy(v, -1.0, &rowspace_part))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Euclidean norm of a vector.
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `a + c * b`, elementwise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(a: &[f64], c: f64, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + c * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_spd(n: usize, rng: &mut StdRng) -> Matrix {
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = rng.gen_range(-1.0..1.0);
            }
        }
        let mut spd = b.transpose().matmul(&b);
        spd.add_diagonal(0.5);
        spd
    }

    #[test]
    fn lu_solves_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 5.0]]);
        assert_eq!(a.solve(&[6.0, 10.0]).unwrap(), vec![2.0, 2.0]);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero in the leading position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn lu_random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 5, 8, 13] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.gen_range(-2.0..2.0);
                }
            }
            a.add_diagonal(3.0); // keep well-conditioned
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let b = a.matvec(&x_true);
            let x = a.solve(&b).unwrap();
            assert!(
                norm2(&axpy(&x, -1.0, &x_true)) < 1e-8,
                "n={n}: {x:?} vs {x_true:?}"
            );
        }
    }

    #[test]
    fn cholesky_random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 4, 9] {
            let a = random_spd(n, &mut rng);
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b = a.matvec(&x_true);
            let x = a.cholesky_solve(&b).unwrap();
            assert!(norm2(&axpy(&x, -1.0, &x_true)) < 1e-8);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky_solve(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn least_squares_exact_square() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]);
        let x = a.least_squares(&[3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_regression() {
        // Fit y = 2t + 1 through noiseless samples.
        let ts = [0.0, 1.0, 2.0, 3.0];
        let rows: Vec<Vec<f64>> = ts.iter().map(|&t| vec![t, 1.0]).collect();
        let a = Matrix::from_rows(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
        let b: Vec<f64> = ts.iter().map(|&t| 2.0 * t + 1.0).collect();
        let x = a.least_squares(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: residual of LS solution must not be improvable
        // by small perturbations.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let b = [0.0, 2.0, 3.0];
        let x = a.least_squares(&b).unwrap();
        let res = norm2(&axpy(&a.matvec(&x), -1.0, &b));
        for dx in [[1e-3, 0.0], [0.0, 1e-3], [-1e-3, 1e-3]] {
            let xp = [x[0] + dx[0], x[1] + dx[1]];
            let rp = norm2(&axpy(&a.matvec(&xp), -1.0, &b));
            assert!(rp >= res - 1e-12);
        }
    }

    #[test]
    fn project_out_rowspace_lands_in_null_space() {
        // A = [1 1 0]: null space is {(a, -a, c)}.
        let a = Matrix::from_rows(&[&[1.0, 1.0, 0.0]]);
        let p = a.project_out_rowspace(&[3.0, 1.0, 5.0]).unwrap();
        assert!(norm2(&a.matvec(&p)) < 1e-9, "{p:?}");
        // The null-space component of (3, 1, 5) is (1, -1, 5).
        assert!(norm2(&axpy(&p, -1.0, &[1.0, -1.0, 5.0])) < 1e-6, "{p:?}");
        // A vector already in the null space is unchanged.
        let q = a.project_out_rowspace(&[2.0, -2.0, 7.0]).unwrap();
        assert!(norm2(&axpy(&q, -1.0, &[2.0, -2.0, 7.0])) < 1e-6, "{q:?}");
    }

    #[test]
    fn min_norm_solution_satisfies_and_minimizes() {
        // One equation, two unknowns: y0 + y1 = 2. Min-norm answer: (1, 1).
        let a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let y = a.min_norm_solution(&[2.0]).unwrap();
        assert!((y[0] - 1.0).abs() < 1e-6);
        assert!((y[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = Matrix::zeros(3, 5);
        for i in 0..3 {
            for j in 0..5 {
                a[(i, j)] = rng.gen_range(-1.0..1.0);
            }
        }
        let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let direct = a.matvec_t(&x);
        let via_t = a.transpose().matvec(&x);
        assert!(norm2(&axpy(&direct, -1.0, &via_t)) < 1e-12);
    }

    #[test]
    fn add_outer_matches_explicit() {
        let v = [1.0, -2.0, 3.0];
        let mut m = Matrix::identity(3);
        m.add_outer(0.5, &v);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 } + 0.5 * v[i] * v[j];
                assert!((m[(i, j)] - expected).abs() < 1e-12);
            }
        }
    }
}
