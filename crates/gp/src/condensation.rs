//! Signomial programming by successive condensation.
//!
//! Convolution halo terms make some of Thistle's exact expressions
//! *signomials* (`2*T_w + T_s - 2`), which geometric programs cannot host.
//! The solver's default treatment drops the negative terms (a safe
//! posynomial upper bound). This module implements the standard refinement:
//! **condensation** (a.k.a. the convex part of signomial programming).
//!
//! A constraint `P(x) <= M(x) + Q(x)` — `P`, `Q` posynomials, `M` a monomial
//! (the original `signomial <= monomial` with negative terms moved right) —
//! is approximated at a point `x0` by replacing the posynomial denominator
//! `g = M + Q` with its best *monomial* minorant at `x0` (the weighted
//! AM-GM bound `g(x) >= prod_j (u_j(x)/a_j)^{a_j}` with weights
//! `a_j = u_j(x0)/g(x0)`). The condensed constraint `P / g~ <= 1` is a valid
//! GP constraint and is *conservative* (every condensed-feasible point is
//! feasible), so iterating solve -> recondense converges to a KKT point of
//! the signomial program from any feasible start.

use crate::deadline::Deadline;
use crate::problem::{GpProblem, SolveOptions};
use crate::solver::{GpError, Solution};
use thistle_expr::{
    Assignment, CompiledPosynomial, CompiledSignomial, EvalScratch, Monomial, Posynomial,
    Signomial, Var, VarRegistry,
};

/// A signomial program in `lhs <= rhs` form: minimize a signomial objective
/// subject to signomial constraints, monomial equalities, and variable
/// bounds.
#[derive(Debug, Clone)]
pub struct SignomialProblem {
    registry: VarRegistry,
    objective: Signomial,
    /// Constraints `lhs <= rhs`.
    constraints: Vec<(Signomial, Monomial)>,
    equalities: Vec<(Monomial, Monomial)>,
    bounds: Vec<(Var, f64, f64)>,
}

impl SignomialProblem {
    /// Creates an empty problem over the variables of `registry`.
    pub fn new(registry: VarRegistry) -> Self {
        SignomialProblem {
            registry,
            objective: Signomial::zero(),
            constraints: Vec::new(),
            equalities: Vec::new(),
            bounds: Vec::new(),
        }
    }

    /// Sets the signomial objective to minimize.
    pub fn set_objective(&mut self, objective: Signomial) -> &mut Self {
        self.objective = objective;
        self
    }

    /// Adds the constraint `lhs <= rhs`.
    pub fn add_le(&mut self, lhs: Signomial, rhs: Monomial) -> &mut Self {
        self.constraints.push((lhs, rhs));
        self
    }

    /// Adds the monomial equality `lhs == rhs`.
    pub fn add_eq(&mut self, lhs: Monomial, rhs: Monomial) -> &mut Self {
        self.equalities.push((lhs, rhs));
        self
    }

    /// Constrains `lo <= v <= hi`.
    pub fn add_bounds(&mut self, v: Var, lo: f64, hi: f64) -> &mut Self {
        self.bounds.push((v, lo, hi));
        self
    }

    /// Solves by successive condensation.
    ///
    /// Round zero solves the posynomial *upper-bound* relaxation (negative
    /// terms dropped — always conservative); each later round condenses the
    /// signomial parts at the previous solution and re-solves. Stops when the
    /// objective improves by less than `tol` relatively, or after `rounds`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors from the underlying GPs; `Infeasible` from
    /// round zero means even the conservative relaxation has no solution.
    pub fn solve(
        &self,
        options: &SolveOptions,
        rounds: usize,
        tol: f64,
    ) -> Result<CondensationResult, GpError> {
        self.solve_traced(options, rounds, tol, &thistle_obs::TraceCtx::disabled())
    }

    /// [`SignomialProblem::solve`] under a `"condensation"` trace span
    /// carrying the round count and per-round objective history; each
    /// condensed GP solve nests as a `"barrier_solve"` span.
    pub fn solve_traced(
        &self,
        options: &SolveOptions,
        rounds: usize,
        tol: f64,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<CondensationResult, GpError> {
        self.solve_cancellable(options, rounds, tol, &Deadline::none(), ctx)
    }

    /// [`SignomialProblem::solve_traced`] with cooperative cancellation
    /// threaded into every condensed GP solve.
    pub fn solve_cancellable(
        &self,
        options: &SolveOptions,
        rounds: usize,
        tol: f64,
        deadline: &Deadline,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<CondensationResult, GpError> {
        let mut span = ctx.span("condensation");
        let result = self.solve_inner(options, rounds, tol, deadline, ctx);
        if span.enabled() {
            match &result {
                Ok(r) => {
                    span.set("rounds", r.rounds());
                    span.set("objective_history", r.objective_history.clone());
                }
                Err(e) => span.set("status", format!("error: {e}")),
            }
        }
        result
    }

    fn solve_inner(
        &self,
        options: &SolveOptions,
        rounds: usize,
        tol: f64,
        deadline: &Deadline,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<CondensationResult, GpError> {
        let prepared = self.prepare();
        let exact_objective = CompiledSignomial::compile(&self.objective);
        let mut scratch = EvalScratch::default();

        let (mut current, mut prev_gp) =
            self.solve_condensed(&prepared, options, None, None, &mut scratch, deadline, ctx)?;
        let mut best_value = exact_objective.eval_with(&current.assignment, &mut scratch);
        let mut best = current.clone();
        let mut history = vec![best_value];

        for round in 0..rounds {
            let attempt = if thistle_fault::fire("gp.condense", round as u64) {
                Err(GpError::NumericalFailure(
                    "injected condensation-round failure".into(),
                ))
            } else {
                // Later rounds change only the per-round monomial
                // approximants, so the warm path reuses every unchanged
                // lowered row of the previous round's GP and opens the
                // barrier from the expansion point.
                self.solve_condensed(
                    &prepared,
                    options,
                    Some(&current.assignment),
                    Some(&prev_gp),
                    &mut scratch,
                    deadline,
                    ctx,
                )
            };
            let (next, next_gp) = match attempt {
                Ok(s) => s,
                // A cancelled solve must stop the whole refinement, not be
                // mistaken for routine numerical trouble.
                Err(GpError::Cancelled) => return Err(GpError::Cancelled),
                // Numerical trouble in a later round: keep the best-so-far.
                Err(_) => break,
            };
            let value = exact_objective.eval_with(&next.assignment, &mut scratch);
            let prev = *history.last().expect("nonempty");
            history.push(value);
            current = next;
            prev_gp = next_gp;
            if value < best_value {
                best_value = value;
                best = current.clone();
            }
            if (prev - value).abs() <= tol * prev.abs().max(1.0) {
                break;
            }
        }
        Ok(CondensationResult {
            solution: best,
            objective_history: history,
        })
    }

    /// Splits every constraint (and the `objective <= t` epigraph row) once,
    /// compiling each signomial row's fixed AM-GM denominator `rhs + Q` so
    /// later rounds only recompute weights at the new expansion point.
    fn prepare(&self) -> PreparedCondensation {
        let mut registry = self.registry.clone();
        let t_obj = registry.var("t_condense_obj");
        let epigraph = (&self.objective, Monomial::var(t_obj));
        let rows = std::iter::once(epigraph)
            .chain(self.constraints.iter().map(|(l, r)| (l, r.clone())))
            .map(|(lhs, rhs)| {
                let (positive, negative) = split_signomial(lhs);
                let kind = match (positive, negative) {
                    // All terms negative: lhs <= 0 <= rhs holds trivially.
                    (None, _) => PreparedRow::Trivial,
                    (Some(p), None) => PreparedRow::Posynomial(p),
                    (Some(p), Some(q)) => {
                        let denominator = Posynomial::from(rhs.clone()) + q;
                        PreparedRow::Signomial {
                            positive: p,
                            denominator: CompiledPosynomial::compile(&denominator),
                        }
                    }
                };
                (kind, rhs)
            })
            .collect();
        PreparedCondensation {
            registry,
            t_obj,
            rows,
        }
    }

    /// Builds and solves one condensed GP from the prepared rows, returning
    /// the solution together with the GP (the next round's warm-start
    /// prior). With `around == None`, signomial negative terms are dropped
    /// (round-zero upper bound); otherwise each prepared denominator is
    /// condensed at the given point, and with a `prior` GP the solve goes
    /// through the patched warm path instead of a cold lowering.
    #[allow(clippy::too_many_arguments)]
    fn solve_condensed(
        &self,
        prepared: &PreparedCondensation,
        options: &SolveOptions,
        around: Option<&Assignment>,
        prior: Option<&GpProblem>,
        scratch: &mut EvalScratch,
        deadline: &Deadline,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<(Solution, GpProblem), GpError> {
        let mut gp = GpProblem::new(prepared.registry.clone());

        // Objective: minimize t with objective <= t (condensed).
        gp.set_objective(Posynomial::from_var(prepared.t_obj));
        for (row, rhs) in &prepared.rows {
            match (row, around) {
                (PreparedRow::Trivial, _) => {}
                // Pure posynomial: direct.
                (PreparedRow::Posynomial(p), _) => {
                    gp.add_le(p.clone(), rhs.clone());
                }
                // Upper-bound round: drop the negative part (conservative).
                (PreparedRow::Signomial { positive, .. }, None) => {
                    gp.add_le(positive.clone(), rhs.clone());
                }
                // Condensed round: P <= rhs + Q  ~>  P / monomialize(rhs+Q) <= 1.
                (
                    PreparedRow::Signomial {
                        positive,
                        denominator,
                    },
                    Some(point),
                ) => {
                    let approx = monomialize_compiled(denominator, point, scratch);
                    gp.add_le(positive.clone(), approx);
                }
            }
        }
        for (a, b) in &self.equalities {
            gp.add_eq(a.clone(), b.clone());
        }
        for &(v, lo, hi) in &self.bounds {
            gp.add_bounds(v, lo, hi);
        }
        let sol = match (around, prior) {
            (Some(point), Some(prev)) => gp.solve_warm(options, prev, point, deadline, ctx),
            _ => gp.solve_cancellable(options, deadline, ctx),
        }?;
        Ok((sol, gp))
    }
}

/// Per-solve state built once by [`SignomialProblem::prepare`]: the augmented
/// registry, the epigraph variable, and one [`PreparedRow`] per constraint
/// (row 0 is the epigraph `objective <= t`), in problem order.
struct PreparedCondensation {
    registry: VarRegistry,
    t_obj: Var,
    rows: Vec<(PreparedRow, Monomial)>,
}

/// One `lhs <= rhs` row after splitting `lhs = P - Q`.
enum PreparedRow {
    /// All terms of `lhs` are negative; the row never binds.
    Trivial,
    /// `lhs` is already a posynomial: added verbatim every round.
    Posynomial(Posynomial),
    /// Genuine signomial row. The AM-GM denominator `rhs + Q` is fixed
    /// across rounds — only its expansion point moves — so it is compiled
    /// once up front.
    Signomial {
        positive: Posynomial,
        denominator: CompiledPosynomial,
    },
}

/// Result of a condensation run.
#[derive(Debug, Clone)]
pub struct CondensationResult {
    /// Final (best) solution.
    pub solution: Solution,
    /// Exact signomial objective value after each round (round 0 = the
    /// upper-bound relaxation).
    pub objective_history: Vec<f64>,
}

impl CondensationResult {
    /// Number of condensation rounds performed after the initial relaxation.
    pub fn rounds(&self) -> usize {
        self.objective_history.len().saturating_sub(1)
    }
}

/// Splits a signomial into its positive part and the posynomial of its
/// negated negative part: `s = P - Q`.
fn split_signomial(s: &Signomial) -> (Option<Posynomial>, Option<Posynomial>) {
    let positive = s.posynomial_upper_bound();
    let negative = (-s).posynomial_upper_bound();
    (positive, negative)
}

/// The weighted AM-GM monomial minorant of a posynomial at `point`:
/// `g(x) >= prod_j (u_j(x) / a_j)^{a_j}` with `a_j = u_j(point)/g(point)`,
/// tight at `point`.
pub fn monomialize(g: &Posynomial, point: &Assignment) -> Monomial {
    monomialize_compiled(
        &CompiledPosynomial::compile(g),
        point,
        &mut EvalScratch::default(),
    )
}

/// [`monomialize`] over a pre-compiled posynomial: one CSR sweep for the
/// per-term values, one for the weighted exponent accumulation. Exponents
/// accumulate densely over the compiled live-variable list in term order —
/// the same per-variable summation order as the symbolic walk.
fn monomialize_compiled(
    g: &CompiledPosynomial,
    point: &Assignment,
    scratch: &mut EvalScratch,
) -> Monomial {
    let (total, terms) = g.term_values(point, scratch);
    debug_assert!(total > 0.0);
    let coeffs = g.coeffs();
    let mut log_coeff = 0.0;
    let mut exps = vec![0.0f64; g.vars().len()];
    for k in 0..g.num_terms() {
        let alpha = terms[k] / total;
        if alpha <= 0.0 {
            continue;
        }
        log_coeff += alpha * (coeffs[k].ln() - alpha.ln());
        let (cols, row_exps) = g.row(k);
        for (&col, &a) in cols.iter().zip(row_exps) {
            exps[col as usize] += alpha * a;
        }
    }
    Monomial::new(
        log_coeff.exp(),
        g.vars().iter().copied().zip(exps.iter().copied()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn monomialize_is_a_tight_minorant() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let g = Posynomial::from_var(x)
            + Posynomial::from(Monomial::new(2.0, [(y, 1.0)]))
            + Posynomial::constant(3.0);
        let mut point = reg.assignment();
        point.set(x, 2.0);
        point.set(y, 1.5);
        let m = monomialize(&g, &point);
        // Tight at the expansion point...
        assert!((m.eval(&point) - g.eval(&point)).abs() < 1e-9);
        // ...and a global minorant (AM-GM): check random points.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let mut p = reg.assignment();
            p.set(x, rng.gen_range(0.01..50.0));
            p.set(y, rng.gen_range(0.01..50.0));
            assert!(m.eval(&p) <= g.eval(&p) * (1.0 + 1e-9));
        }
    }

    /// A problem where the upper-bound relaxation is strictly suboptimal:
    /// minimize 1/(x*y) subject to the *signomial* capacity
    /// x*y + x + y - 2 <= 16. Dropping "-2" (round 0) forces
    /// x*y + x + y <= 16; condensation recovers the looser true feasible
    /// region and a better objective.
    #[test]
    fn condensation_beats_upper_bound_relaxation() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut sp = SignomialProblem::new(reg);
        sp.set_objective(Signomial::from(Monomial::new(1.0, [(x, -1.0), (y, -1.0)])));
        let capacity =
            Signomial::var(x) * Signomial::var(y) + Signomial::var(x) + Signomial::var(y)
                - Signomial::constant(2.0);
        sp.add_le(capacity.clone(), Monomial::constant(16.0));
        sp.add_bounds(x, 0.1, 100.0);
        sp.add_bounds(y, 0.1, 100.0);

        let result = sp.solve(&SolveOptions::default(), 10, 1e-9).unwrap();
        let history = &result.objective_history;
        assert!(history.len() >= 2, "at least one condensation round ran");
        assert!(
            history.last().unwrap() < &(history[0] * 0.999),
            "condensation must improve on the relaxation: {history:?}"
        );
        // The exact constraint is satisfied at the final point.
        let point = &result.solution.assignment;
        assert!(capacity.eval(point) <= 16.0 + 1e-6);
        // By symmetry x == y and x*y + 2x - 2 = 16 => x ~ 3.3589.
        let xv = point.get(x);
        assert!((xv - point.get(y)).abs() < 1e-3);
        assert!((xv * xv + 2.0 * xv - 18.0).abs() < 1e-3, "x = {xv}");
    }

    #[test]
    fn objective_history_is_monotone_nonincreasing() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut sp = SignomialProblem::new(reg);
        // Signomial objective with a negative term: x + y - 0.5/x.
        sp.set_objective(
            Signomial::var(x) + Signomial::var(y)
                - Signomial::from(Monomial::new(0.5, [(x, -1.0)])),
        );
        sp.add_le(
            Signomial::from(Monomial::new(4.0, [(x, -1.0), (y, -1.0)])),
            Monomial::one(),
        ); // x*y >= 4
        sp.add_bounds(x, 0.1, 100.0);
        sp.add_bounds(y, 0.1, 100.0);
        let result = sp.solve(&SolveOptions::default(), 8, 1e-12).unwrap();
        for w in result.objective_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "{:?}", result.objective_history);
        }
    }

    #[test]
    fn pure_posynomial_problems_converge_in_round_zero() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let mut sp = SignomialProblem::new(reg);
        sp.set_objective(Signomial::var(x) + Signomial::from(Monomial::new(1.0, [(x, -1.0)])));
        sp.add_bounds(x, 0.01, 100.0);
        let result = sp.solve(&SolveOptions::default(), 5, 1e-9).unwrap();
        assert!((result.solution.assignment.get(x) - 1.0).abs() < 1e-4);
        // One extra round confirms the fixed point, then it stops.
        assert!(result.rounds() <= 2);
    }

    #[test]
    fn infeasible_relaxation_is_reported() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let mut sp = SignomialProblem::new(reg);
        sp.set_objective(Signomial::var(x));
        sp.add_le(Signomial::var(x), Monomial::constant(1.0));
        sp.add_bounds(x, 2.0, 3.0); // x <= 1 contradicts x >= 2
        let err = sp.solve(&SolveOptions::default(), 3, 1e-9).unwrap_err();
        assert_eq!(err, GpError::Infeasible);
    }
}
