//! Signomial programming by successive condensation.
//!
//! Convolution halo terms make some of Thistle's exact expressions
//! *signomials* (`2*T_w + T_s - 2`), which geometric programs cannot host.
//! The solver's default treatment drops the negative terms (a safe
//! posynomial upper bound). This module implements the standard refinement:
//! **condensation** (a.k.a. the convex part of signomial programming).
//!
//! A constraint `P(x) <= M(x) + Q(x)` — `P`, `Q` posynomials, `M` a monomial
//! (the original `signomial <= monomial` with negative terms moved right) —
//! is approximated at a point `x0` by replacing the posynomial denominator
//! `g = M + Q` with its best *monomial* minorant at `x0` (the weighted
//! AM-GM bound `g(x) >= prod_j (u_j(x)/a_j)^{a_j}` with weights
//! `a_j = u_j(x0)/g(x0)`). The condensed constraint `P / g~ <= 1` is a valid
//! GP constraint and is *conservative* (every condensed-feasible point is
//! feasible), so iterating solve -> recondense converges to a KKT point of
//! the signomial program from any feasible start.

use crate::problem::{GpProblem, SolveOptions};
use crate::solver::{GpError, Solution};
use thistle_expr::{Assignment, Monomial, Posynomial, Signomial, Var, VarRegistry};

/// A signomial program in `lhs <= rhs` form: minimize a signomial objective
/// subject to signomial constraints, monomial equalities, and variable
/// bounds.
#[derive(Debug, Clone)]
pub struct SignomialProblem {
    registry: VarRegistry,
    objective: Signomial,
    /// Constraints `lhs <= rhs`.
    constraints: Vec<(Signomial, Monomial)>,
    equalities: Vec<(Monomial, Monomial)>,
    bounds: Vec<(Var, f64, f64)>,
}

impl SignomialProblem {
    /// Creates an empty problem over the variables of `registry`.
    pub fn new(registry: VarRegistry) -> Self {
        SignomialProblem {
            registry,
            objective: Signomial::zero(),
            constraints: Vec::new(),
            equalities: Vec::new(),
            bounds: Vec::new(),
        }
    }

    /// Sets the signomial objective to minimize.
    pub fn set_objective(&mut self, objective: Signomial) -> &mut Self {
        self.objective = objective;
        self
    }

    /// Adds the constraint `lhs <= rhs`.
    pub fn add_le(&mut self, lhs: Signomial, rhs: Monomial) -> &mut Self {
        self.constraints.push((lhs, rhs));
        self
    }

    /// Adds the monomial equality `lhs == rhs`.
    pub fn add_eq(&mut self, lhs: Monomial, rhs: Monomial) -> &mut Self {
        self.equalities.push((lhs, rhs));
        self
    }

    /// Constrains `lo <= v <= hi`.
    pub fn add_bounds(&mut self, v: Var, lo: f64, hi: f64) -> &mut Self {
        self.bounds.push((v, lo, hi));
        self
    }

    /// Solves by successive condensation.
    ///
    /// Round zero solves the posynomial *upper-bound* relaxation (negative
    /// terms dropped — always conservative); each later round condenses the
    /// signomial parts at the previous solution and re-solves. Stops when the
    /// objective improves by less than `tol` relatively, or after `rounds`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors from the underlying GPs; `Infeasible` from
    /// round zero means even the conservative relaxation has no solution.
    pub fn solve(
        &self,
        options: &SolveOptions,
        rounds: usize,
        tol: f64,
    ) -> Result<CondensationResult, GpError> {
        self.solve_traced(options, rounds, tol, &thistle_obs::TraceCtx::disabled())
    }

    /// [`SignomialProblem::solve`] under a `"condensation"` trace span
    /// carrying the round count and per-round objective history; each
    /// condensed GP solve nests as a `"barrier_solve"` span.
    pub fn solve_traced(
        &self,
        options: &SolveOptions,
        rounds: usize,
        tol: f64,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<CondensationResult, GpError> {
        let mut span = ctx.span("condensation");
        let result = self.solve_inner(options, rounds, tol, ctx);
        if span.enabled() {
            match &result {
                Ok(r) => {
                    span.set("rounds", r.rounds());
                    span.set("objective_history", r.objective_history.clone());
                }
                Err(e) => span.set("status", format!("error: {e}")),
            }
        }
        result
    }

    fn solve_inner(
        &self,
        options: &SolveOptions,
        rounds: usize,
        tol: f64,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<CondensationResult, GpError> {
        let mut current = self.solve_condensed(options, None, ctx)?;
        let mut best_value = self.objective.eval(&current.assignment);
        let mut best = current.clone();
        let mut history = vec![best_value];

        for _ in 0..rounds {
            let next = match self.solve_condensed(options, Some(&current.assignment), ctx) {
                Ok(s) => s,
                // Numerical trouble in a later round: keep the best-so-far.
                Err(_) => break,
            };
            let value = self.objective.eval(&next.assignment);
            let prev = *history.last().expect("nonempty");
            history.push(value);
            current = next;
            if value < best_value {
                best_value = value;
                best = current.clone();
            }
            if (prev - value).abs() <= tol * prev.abs().max(1.0) {
                break;
            }
        }
        Ok(CondensationResult {
            solution: best,
            objective_history: history,
        })
    }

    /// Builds and solves one condensed GP. With `around == None`, signomial
    /// negative terms are dropped (round-zero upper bound); otherwise they
    /// are condensed at the given point.
    fn solve_condensed(
        &self,
        options: &SolveOptions,
        around: Option<&Assignment>,
        ctx: &thistle_obs::TraceCtx,
    ) -> Result<Solution, GpError> {
        let mut registry = self.registry.clone();
        let t_obj = registry.var("t_condense_obj");
        let mut gp = GpProblem::new(registry);

        // Objective: minimize t with objective <= t (condensed).
        gp.set_objective(Posynomial::from_var(t_obj));
        self.add_condensed_le(&mut gp, &self.objective, &Monomial::var(t_obj), around)?;
        for (lhs, rhs) in &self.constraints {
            self.add_condensed_le(&mut gp, lhs, rhs, around)?;
        }
        for (a, b) in &self.equalities {
            gp.add_eq(a.clone(), b.clone());
        }
        for &(v, lo, hi) in &self.bounds {
            gp.add_bounds(v, lo, hi);
        }
        gp.solve_traced(options, ctx)
    }

    /// Encodes `lhs <= rhs` into `gp`, handling negative terms of `lhs`.
    fn add_condensed_le(
        &self,
        gp: &mut GpProblem,
        lhs: &Signomial,
        rhs: &Monomial,
        around: Option<&Assignment>,
    ) -> Result<(), GpError> {
        let (positive, negative) = split_signomial(lhs);
        let Some(positive) = positive else {
            return Ok(()); // lhs <= 0 <= rhs trivially (all terms negative)
        };
        match (negative, around) {
            // Pure posynomial: direct.
            (None, _) => {
                gp.add_le(positive, rhs.clone());
            }
            // Upper-bound round: drop the negative part (conservative).
            (Some(_), None) => {
                gp.add_le(positive, rhs.clone());
            }
            // Condensed round: P <= rhs + Q  ~>  P / monomialize(rhs+Q) <= 1.
            (Some(negative), Some(point)) => {
                let denominator = Posynomial::from(rhs.clone()) + negative;
                let approx = monomialize(&denominator, point);
                gp.add_le(positive, approx);
            }
        }
        Ok(())
    }
}

/// Result of a condensation run.
#[derive(Debug, Clone)]
pub struct CondensationResult {
    /// Final (best) solution.
    pub solution: Solution,
    /// Exact signomial objective value after each round (round 0 = the
    /// upper-bound relaxation).
    pub objective_history: Vec<f64>,
}

impl CondensationResult {
    /// Number of condensation rounds performed after the initial relaxation.
    pub fn rounds(&self) -> usize {
        self.objective_history.len().saturating_sub(1)
    }
}

/// Splits a signomial into its positive part and the posynomial of its
/// negated negative part: `s = P - Q`.
fn split_signomial(s: &Signomial) -> (Option<Posynomial>, Option<Posynomial>) {
    let positive = s.posynomial_upper_bound();
    let negative = (-s).posynomial_upper_bound();
    (positive, negative)
}

/// The weighted AM-GM monomial minorant of a posynomial at `point`:
/// `g(x) >= prod_j (u_j(x) / a_j)^{a_j}` with `a_j = u_j(point)/g(point)`,
/// tight at `point`.
pub fn monomialize(g: &Posynomial, point: &Assignment) -> Monomial {
    let total = g.eval(point);
    debug_assert!(total > 0.0);
    let mut log_coeff = 0.0;
    let mut exps: std::collections::BTreeMap<Var, f64> = std::collections::BTreeMap::new();
    for u in g.monomials() {
        let alpha = u.eval(point) / total;
        if alpha <= 0.0 {
            continue;
        }
        log_coeff += alpha * (u.coeff().ln() - alpha.ln());
        for (v, a) in u.powers() {
            *exps.entry(v).or_insert(0.0) += alpha * a;
        }
    }
    Monomial::new(log_coeff.exp(), exps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn monomialize_is_a_tight_minorant() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let g = Posynomial::from_var(x)
            + Posynomial::from(Monomial::new(2.0, [(y, 1.0)]))
            + Posynomial::constant(3.0);
        let mut point = reg.assignment();
        point.set(x, 2.0);
        point.set(y, 1.5);
        let m = monomialize(&g, &point);
        // Tight at the expansion point...
        assert!((m.eval(&point) - g.eval(&point)).abs() < 1e-9);
        // ...and a global minorant (AM-GM): check random points.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let mut p = reg.assignment();
            p.set(x, rng.gen_range(0.01..50.0));
            p.set(y, rng.gen_range(0.01..50.0));
            assert!(m.eval(&p) <= g.eval(&p) * (1.0 + 1e-9));
        }
    }

    /// A problem where the upper-bound relaxation is strictly suboptimal:
    /// minimize 1/(x*y) subject to the *signomial* capacity
    /// x*y + x + y - 2 <= 16. Dropping "-2" (round 0) forces
    /// x*y + x + y <= 16; condensation recovers the looser true feasible
    /// region and a better objective.
    #[test]
    fn condensation_beats_upper_bound_relaxation() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut sp = SignomialProblem::new(reg);
        sp.set_objective(Signomial::from(Monomial::new(1.0, [(x, -1.0), (y, -1.0)])));
        let capacity =
            Signomial::var(x) * Signomial::var(y) + Signomial::var(x) + Signomial::var(y)
                - Signomial::constant(2.0);
        sp.add_le(capacity.clone(), Monomial::constant(16.0));
        sp.add_bounds(x, 0.1, 100.0);
        sp.add_bounds(y, 0.1, 100.0);

        let result = sp.solve(&SolveOptions::default(), 10, 1e-9).unwrap();
        let history = &result.objective_history;
        assert!(history.len() >= 2, "at least one condensation round ran");
        assert!(
            history.last().unwrap() < &(history[0] * 0.999),
            "condensation must improve on the relaxation: {history:?}"
        );
        // The exact constraint is satisfied at the final point.
        let point = &result.solution.assignment;
        assert!(capacity.eval(point) <= 16.0 + 1e-6);
        // By symmetry x == y and x*y + 2x - 2 = 16 => x ~ 3.3589.
        let xv = point.get(x);
        assert!((xv - point.get(y)).abs() < 1e-3);
        assert!((xv * xv + 2.0 * xv - 18.0).abs() < 1e-3, "x = {xv}");
    }

    #[test]
    fn objective_history_is_monotone_nonincreasing() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut sp = SignomialProblem::new(reg);
        // Signomial objective with a negative term: x + y - 0.5/x.
        sp.set_objective(
            Signomial::var(x) + Signomial::var(y)
                - Signomial::from(Monomial::new(0.5, [(x, -1.0)])),
        );
        sp.add_le(
            Signomial::from(Monomial::new(4.0, [(x, -1.0), (y, -1.0)])),
            Monomial::one(),
        ); // x*y >= 4
        sp.add_bounds(x, 0.1, 100.0);
        sp.add_bounds(y, 0.1, 100.0);
        let result = sp.solve(&SolveOptions::default(), 8, 1e-12).unwrap();
        for w in result.objective_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "{:?}", result.objective_history);
        }
    }

    #[test]
    fn pure_posynomial_problems_converge_in_round_zero() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let mut sp = SignomialProblem::new(reg);
        sp.set_objective(Signomial::var(x) + Signomial::from(Monomial::new(1.0, [(x, -1.0)])));
        sp.add_bounds(x, 0.01, 100.0);
        let result = sp.solve(&SolveOptions::default(), 5, 1e-9).unwrap();
        assert!((result.solution.assignment.get(x) - 1.0).abs() < 1e-4);
        // One extra round confirms the fixed point, then it stops.
        assert!(result.rounds() <= 2);
    }

    #[test]
    fn infeasible_relaxation_is_reported() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let mut sp = SignomialProblem::new(reg);
        sp.set_objective(Signomial::var(x));
        sp.add_le(Signomial::var(x), Monomial::constant(1.0));
        sp.add_bounds(x, 2.0, 3.0); // x <= 1 contradicts x >= 2
        let err = sp.solve(&SolveOptions::default(), 3, 1e-9).unwrap_err();
        assert_eq!(err, GpError::Infeasible);
    }
}
