//! The log-log transform from geometric programs to smooth convex programs.
//!
//! Under `y = log x`, a monomial `c * prod x_i^{a_i}` becomes the affine
//! function `a^T y + log c` and a posynomial becomes a log-sum-exp of affine
//! functions. A GP in standard form therefore becomes
//!
//! ```text
//! minimize    F0(y)            (log-sum-exp, convex)
//! subject to  Fi(y) <= 0       (log of posynomial constraints)
//!             A y = b          (log of monomial equalities)
//! ```
//!
//! which the barrier solver in this crate handles directly.
//!
//! [`LogSumExp`] is the *compiled* form the solver consumes: the exponent
//! matrix is stored in compressed sparse rows (most monomials mention a
//! handful of the problem's variables — bound constraints exactly one), so
//! value/gradient/Hessian evaluation is a cache-friendly sweep over the
//! nonzero entries instead of dense row dots and rank-one updates.

use crate::linalg::Matrix;
use thistle_expr::{Monomial, Posynomial};

/// A function `F(y) = log sum_k exp(a_k^T y + b_k)` — the log-log image of a
/// posynomial, compiled to a CSR exponent matrix.
///
/// Evaluation shifts by the max exponent for numerical stability; gradient
/// and Hessian use the standard softmax identities:
/// `grad F = sum_k p_k a_k` and
/// `hess F = sum_k p_k a_k a_k^T - (grad F)(grad F)^T`
/// with `p_k` the softmax weights. The Hessian is positive semidefinite, as
/// convexity demands. The softmax accumulations only touch each row's
/// nonzeros (`nnz` work for the gradient, `nnz^2` for the Hessian scatter),
/// plus one rank-one update over the live columns for the `-gg^T` term.
#[derive(Debug, Clone, PartialEq)]
pub struct LogSumExp {
    /// CSR row boundaries, one row per monomial (length `num_terms + 1`).
    row_ptr: Vec<u32>,
    /// CSR column indices (variable indices in `0..n`).
    cols: Vec<u32>,
    /// CSR exponent values, parallel to `cols`.
    vals: Vec<f64>,
    /// `log c_k` per monomial.
    offsets: Vec<f64>,
    /// Sorted union of all columns with a nonzero exponent.
    live: Vec<u32>,
    n: usize,
}

/// Counts of CSR exponent rows reused from a prior lowering versus rebuilt
/// by [`LogSumExp::from_posynomial_patched`].
///
/// A near-miss query (same workload shape class, different batch or bounds)
/// changes *coefficients* — trip-count totals, capacity right-hand sides —
/// but not which variables each monomial mentions or with what exponents.
/// Because monomials are canonicalized (and, in the generators, hash-consed
/// through the expression arena), an unchanged exponent row is bitwise
/// identical between the two lowerings, so the patched path copies it
/// verbatim and only re-lowers the rows that actually changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoweringReuse {
    /// CSR exponent rows copied verbatim from the prior lowering.
    pub rows_reused: u64,
    /// Rows lowered fresh: the exponent pattern changed, or the term had no
    /// prior counterpart.
    pub rows_relowered: u64,
}

/// Reusable per-term buffers for [`LogSumExp`] evaluation, so the Newton
/// loop evaluates every constraint without allocating.
#[derive(Debug, Clone, Default)]
pub struct LseScratch {
    /// Affine values `a_k^T y + b_k` per term.
    gs: Vec<f64>,
    /// Softmax weights per term.
    ws: Vec<f64>,
}

impl LogSumExp {
    /// Builds the log-log image of `p` over `n` variables (indexed by
    /// [`thistle_expr::Var::index`]).
    pub fn from_posynomial(p: &Posynomial, n: usize) -> Self {
        let mut row_ptr = vec![0u32];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut offsets = Vec::with_capacity(p.num_terms());
        for (c, m) in p.terms() {
            for (v, a) in m.powers() {
                assert!(
                    v.index() < n,
                    "monomial references variable {} outside problem dimension {n}",
                    v.index()
                );
                cols.push(v.index() as u32);
                vals.push(a);
            }
            row_ptr.push(cols.len() as u32);
            offsets.push((c * m.coeff()).ln());
        }
        Self::assemble(row_ptr, cols, vals, offsets, n)
    }

    /// Lowers `p` like [`LogSumExp::from_posynomial`], but copies the CSR
    /// exponent row of `prior` for every term whose exponent pattern is
    /// unchanged, counting reused vs re-lowered rows into `reuse`. Offsets
    /// (`log c_k`) are always recomputed — they are one `ln` per term and
    /// they are exactly what a near-miss changes.
    ///
    /// The result is identical to a fresh lowering; only the row provenance
    /// (and the accounting) differs.
    pub fn from_posynomial_patched(
        p: &Posynomial,
        n: usize,
        prior: &LogSumExp,
        reuse: &mut LoweringReuse,
    ) -> Self {
        if prior.n != n {
            // Different variable space: nothing is reusable.
            let fresh = Self::from_posynomial(p, n);
            reuse.rows_relowered += fresh.num_terms() as u64;
            return fresh;
        }
        let mut row_ptr = vec![0u32];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut offsets = Vec::with_capacity(p.num_terms());
        for (k, (c, m)) in p.terms().enumerate() {
            let prior_row = (k < prior.num_terms()).then(|| prior.row(k));
            let unchanged = prior_row.is_some_and(|(pc, pv)| {
                let mut matched = 0usize;
                for (v, a) in m.powers() {
                    let j = matched;
                    if j >= pc.len()
                        || pc[j] as usize != v.index()
                        || pv[j].to_bits() != a.to_bits()
                    {
                        return false;
                    }
                    matched += 1;
                }
                matched == pc.len()
            });
            if unchanged {
                let (pc, pv) = prior_row.expect("checked above");
                cols.extend_from_slice(pc);
                vals.extend_from_slice(pv);
                reuse.rows_reused += 1;
            } else {
                for (v, a) in m.powers() {
                    assert!(
                        v.index() < n,
                        "monomial references variable {} outside problem dimension {n}",
                        v.index()
                    );
                    cols.push(v.index() as u32);
                    vals.push(a);
                }
                reuse.rows_relowered += 1;
            }
            row_ptr.push(cols.len() as u32);
            offsets.push((c * m.coeff()).ln());
        }
        Self::assemble(row_ptr, cols, vals, offsets, n)
    }

    fn assemble(
        row_ptr: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<f64>,
        offsets: Vec<f64>,
        n: usize,
    ) -> Self {
        let mut live: Vec<u32> = cols.clone();
        live.sort_unstable();
        live.dedup();
        LogSumExp {
            row_ptr,
            cols,
            vals,
            offsets,
            live,
            n,
        }
    }

    /// Number of exponential terms.
    pub fn num_terms(&self) -> usize {
        self.offsets.len()
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The raw CSR parts `(row_ptr, cols, vals, offsets, live)`, exposed for
    /// the batched engine's shared-structure verification and SoA interleave.
    #[allow(clippy::type_complexity)]
    pub(crate) fn csr_parts(&self) -> (&[u32], &[u32], &[f64], &[f64], &[u32]) {
        (
            &self.row_ptr,
            &self.cols,
            &self.vals,
            &self.offsets,
            &self.live,
        )
    }

    /// The sparse row of term `k`: parallel `(cols, vals)` slices.
    fn row(&self, k: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.row_ptr[k] as usize, self.row_ptr[k + 1] as usize);
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// `a_k^T y + b_k`.
    #[inline]
    fn affine(&self, k: usize, y: &[f64]) -> f64 {
        let (cols, vals) = self.row(k);
        let mut acc = 0.0;
        for (c, a) in cols.iter().zip(vals) {
            acc += a * y[*c as usize];
        }
        acc + self.offsets[k]
    }

    /// `F(y)`, allocation-free (two passes over the nonzeros).
    pub fn value(&self, y: &[f64]) -> f64 {
        debug_assert_eq!(y.len(), self.n);
        let mut mx = f64::NEG_INFINITY;
        for k in 0..self.num_terms() {
            let g = self.affine(k, y);
            if g > mx {
                mx = g;
            }
        }
        let mut z = 0.0;
        for k in 0..self.num_terms() {
            z += (self.affine(k, y) - mx).exp();
        }
        mx + z.ln()
    }

    /// `F(y)` and `grad F(y)`.
    pub fn value_grad(&self, y: &[f64]) -> (f64, Vec<f64>) {
        let mut grad = vec![0.0; self.n];
        let v = self.eval_into(y, &mut grad, None, &mut LseScratch::default());
        (v, grad)
    }

    /// `F(y)`, `grad F(y)` and `hess F(y)` in one pass.
    pub fn value_grad_hess(&self, y: &[f64]) -> (f64, Vec<f64>, Matrix) {
        let mut grad = vec![0.0; self.n];
        let mut hess = Matrix::zeros(self.n, self.n);
        let v = self.eval_into(y, &mut grad, Some(&mut hess), &mut LseScratch::default());
        (v, grad, hess)
    }

    /// The fused evaluation kernel: computes `F(y)`, overwrites `grad` with
    /// `grad F(y)` and, when given, `hess` with `hess F(y)`. Buffers are
    /// zeroed here so callers can reuse them across iterations; `scratch`
    /// holds the per-term softmax state.
    pub fn eval_into(
        &self,
        y: &[f64],
        grad: &mut [f64],
        hess: Option<&mut Matrix>,
        scratch: &mut LseScratch,
    ) -> f64 {
        debug_assert_eq!(y.len(), self.n);
        debug_assert_eq!(grad.len(), self.n);
        scratch.gs.clear();
        scratch
            .gs
            .extend((0..self.num_terms()).map(|k| self.affine(k, y)));
        let mx = scratch.gs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        scratch.ws.clear();
        scratch.ws.extend(scratch.gs.iter().map(|g| (g - mx).exp()));
        let z: f64 = scratch.ws.iter().sum();
        let value = mx + z.ln();

        grad.fill(0.0);
        for (k, &w) in scratch.ws.iter().enumerate() {
            let p = w / z;
            let (cols, vals) = self.row(k);
            for (c, a) in cols.iter().zip(vals) {
                grad[*c as usize] += p * a;
            }
        }
        if let Some(h) = hess {
            debug_assert_eq!(h.rows(), self.n);
            h.fill_zero();
            for (k, &w) in scratch.ws.iter().enumerate() {
                let p = w / z;
                let (cols, vals) = self.row(k);
                for (i, &ci) in cols.iter().enumerate() {
                    let cv = p * vals[i];
                    for (j, &cj) in cols.iter().enumerate() {
                        h[(ci as usize, cj as usize)] += cv * vals[j];
                    }
                }
            }
            // -grad grad^T, restricted to the live columns (grad is zero
            // elsewhere).
            for &ci in &self.live {
                let cv = -grad[ci as usize];
                for &cj in &self.live {
                    h[(ci as usize, cj as usize)] += cv * grad[cj as usize];
                }
            }
        }
        value
    }

    /// `Fi(y) - s` over the extended space `(y, .., s)` with the slack as
    /// column `n`: every exponential row gains a `-1` coefficient on `s`.
    pub(crate) fn with_slack_column(&self, n: usize) -> LogSumExp {
        let terms = self.num_terms();
        let mut row_ptr = vec![0u32];
        let mut cols = Vec::with_capacity(self.cols.len() + terms);
        let mut vals = Vec::with_capacity(self.vals.len() + terms);
        for k in 0..terms {
            let (rc, rv) = self.row(k);
            cols.extend_from_slice(rc);
            vals.extend_from_slice(rv);
            cols.push(n as u32);
            vals.push(-1.0);
            row_ptr.push(cols.len() as u32);
        }
        Self::assemble(row_ptr, cols, vals, self.offsets.clone(), n + 1)
    }

    /// The phase-I objective `s` over the extended space `(y, s)` with `n`
    /// original variables: a single affine term selecting the slack.
    pub(crate) fn slack_objective(n: usize) -> Self {
        let mut row = vec![0.0; n + 1];
        row[n] = 1.0;
        LogSumExp::from_rows(vec![row], vec![0.0])
    }

    /// Builds a function directly from dense exponent rows and offsets.
    pub(crate) fn from_rows(rows: Vec<Vec<f64>>, offsets: Vec<f64>) -> Self {
        assert_eq!(rows.len(), offsets.len());
        let n = rows.first().map_or(0, |r| r.len());
        let mut row_ptr = vec![0u32];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for r in &rows {
            debug_assert_eq!(r.len(), n);
            for (j, &a) in r.iter().enumerate() {
                if a != 0.0 {
                    cols.push(j as u32);
                    vals.push(a);
                }
            }
            row_ptr.push(cols.len() as u32);
        }
        Self::assemble(row_ptr, cols, vals, offsets, n)
    }
}

/// A GP in log-space, ready for the barrier solver.
#[derive(Debug, Clone)]
pub struct TransformedProblem {
    /// Objective `F0`.
    pub objective: LogSumExp,
    /// Inequalities `Fi(y) <= 0`.
    pub inequalities: Vec<LogSumExp>,
    /// Equality rows `A y = b` (may have zero rows).
    pub eq_matrix: Matrix,
    /// Equality right-hand side.
    pub eq_rhs: Vec<f64>,
    /// Number of variables.
    pub n: usize,
}

impl TransformedProblem {
    /// Assembles the log-space problem from GP pieces.
    ///
    /// `inequalities` are posynomials `g` with the meaning `g(x) <= 1`;
    /// `equalities` are monomials `m` with the meaning `m(x) = 1`.
    pub fn new(
        n: usize,
        objective: &Posynomial,
        inequalities: &[Posynomial],
        equalities: &[Monomial],
    ) -> Self {
        let objective = LogSumExp::from_posynomial(objective, n);
        let ineqs = inequalities
            .iter()
            .map(|g| LogSumExp::from_posynomial(g, n))
            .collect();
        let (eq_matrix, eq_rhs) = Self::lower_equalities(n, equalities);
        TransformedProblem {
            objective,
            inequalities: ineqs,
            eq_matrix,
            eq_rhs,
            n,
        }
    }

    /// [`TransformedProblem::new`] reusing `prior`'s CSR rows wherever the
    /// exponent structure is unchanged (constraints are matched by
    /// position, which is stable across near-miss regenerations of the same
    /// model). Returns the lowered problem plus the reuse accounting.
    ///
    /// Equality rows are always rebuilt: they are dense, one row per
    /// monomial equality, and their right-hand sides are exactly where a
    /// near-miss differs.
    pub fn new_patched(
        n: usize,
        objective: &Posynomial,
        inequalities: &[Posynomial],
        equalities: &[Monomial],
        prior: &TransformedProblem,
    ) -> (Self, LoweringReuse) {
        let mut reuse = LoweringReuse::default();
        let objective =
            LogSumExp::from_posynomial_patched(objective, n, &prior.objective, &mut reuse);
        let ineqs = inequalities
            .iter()
            .enumerate()
            .map(|(i, g)| match prior.inequalities.get(i) {
                Some(p) => LogSumExp::from_posynomial_patched(g, n, p, &mut reuse),
                None => {
                    let fresh = LogSumExp::from_posynomial(g, n);
                    reuse.rows_relowered += fresh.num_terms() as u64;
                    fresh
                }
            })
            .collect();
        let (eq_matrix, eq_rhs) = Self::lower_equalities(n, equalities);
        (
            TransformedProblem {
                objective,
                inequalities: ineqs,
                eq_matrix,
                eq_rhs,
                n,
            },
            reuse,
        )
    }

    fn lower_equalities(n: usize, equalities: &[Monomial]) -> (Matrix, Vec<f64>) {
        let mut eq_matrix = Matrix::zeros(equalities.len(), n);
        let mut eq_rhs = vec![0.0; equalities.len()];
        for (i, m) in equalities.iter().enumerate() {
            for (v, a) in m.powers() {
                assert!(
                    v.index() < n,
                    "equality references variable {} outside problem dimension {n}",
                    v.index()
                );
                eq_matrix[(i, v.index())] = a;
            }
            // a^T y + log c = 0  =>  a^T y = -log c
            eq_rhs[i] = -m.coeff().ln();
        }
        (eq_matrix, eq_rhs)
    }

    /// Maps a log-space point back to GP variable values `x = exp(y)`.
    pub fn to_gp_point(&self, y: &[f64]) -> Vec<f64> {
        y.iter().map(|v| v.exp()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::norm2;
    use thistle_expr::VarRegistry;

    fn sample_posy() -> (Posynomial, usize) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        // f = 2 x y^2 + 3 / x
        let f = Posynomial::from(Monomial::new(2.0, [(x, 1.0), (y, 2.0)]))
            + Posynomial::from(Monomial::new(3.0, [(x, -1.0)]));
        (f, reg.len())
    }

    /// The pre-CSR dense implementation, kept as a reference oracle for the
    /// differential tests below.
    struct DenseLse {
        rows: Vec<Vec<f64>>,
        offsets: Vec<f64>,
        n: usize,
    }

    impl DenseLse {
        fn from_posynomial(p: &Posynomial, n: usize) -> Self {
            let mut rows = Vec::new();
            let mut offsets = Vec::new();
            for m in p.monomials() {
                let mut row = vec![0.0; n];
                for (v, a) in m.powers() {
                    row[v.index()] = a;
                }
                rows.push(row);
                offsets.push(m.coeff().ln());
            }
            DenseLse { rows, offsets, n }
        }

        fn eval_full(&self, y: &[f64]) -> (f64, Vec<f64>, Matrix) {
            let dot = |row: &[f64]| row.iter().zip(y).map(|(a, b)| a * b).sum::<f64>();
            let gs: Vec<f64> = self
                .rows
                .iter()
                .zip(&self.offsets)
                .map(|(row, &b)| dot(row) + b)
                .collect();
            let mx = gs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let ws: Vec<f64> = gs.iter().map(|g| (g - mx).exp()).collect();
            let z: f64 = ws.iter().sum();
            let mut grad = vec![0.0; self.n];
            for (row, &w) in self.rows.iter().zip(&ws) {
                let p = w / z;
                for (g, &a) in grad.iter_mut().zip(row) {
                    *g += p * a;
                }
            }
            let mut h = Matrix::zeros(self.n, self.n);
            for (row, &w) in self.rows.iter().zip(&ws) {
                h.add_outer(w / z, row);
            }
            h.add_outer(-1.0, &grad);
            (mx + z.ln(), grad, h)
        }
    }

    #[test]
    fn value_matches_direct_eval() {
        let (f, n) = sample_posy();
        let lse = LogSumExp::from_posynomial(&f, n);
        let y = [0.3f64, -0.7];
        let x: Vec<f64> = y.iter().map(|v| v.exp()).collect();
        let direct: f64 = 2.0 * x[0] * x[1] * x[1] + 3.0 / x[0];
        assert!((lse.value(&y) - direct.ln()).abs() < 1e-12);
    }

    #[test]
    fn csr_matches_dense_reference() {
        let (f, n) = sample_posy();
        let lse = LogSumExp::from_posynomial(&f, n);
        let dense = DenseLse::from_posynomial(&f, n);
        for y in [[0.3, -0.7], [1.2, 0.4], [-2.0, 3.0]] {
            let (dv, dg, dh) = dense.eval_full(&y);
            let (v, g, h) = lse.value_grad_hess(&y);
            assert_eq!(v, dv);
            assert_eq!(g, dg);
            for i in 0..n {
                for j in 0..n {
                    assert!((h[(i, j)] - dh[(i, j)]).abs() <= 1e-15 * (1.0 + dh[(i, j)].abs()));
                }
            }
            assert_eq!(lse.value(&y), dv);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (f, n) = sample_posy();
        let lse = LogSumExp::from_posynomial(&f, n);
        let y = [0.2, 0.5];
        let (_, grad) = lse.value_grad(&y);
        let h = 1e-6;
        for i in 0..n {
            let mut yp = y;
            yp[i] += h;
            let mut ym = y;
            ym[i] -= h;
            let fd = (lse.value(&yp) - lse.value(&ym)) / (2.0 * h);
            assert!((grad[i] - fd).abs() < 1e-6, "component {i}");
        }
    }

    #[test]
    fn hessian_matches_finite_differences_and_is_psd() {
        let (f, n) = sample_posy();
        let lse = LogSumExp::from_posynomial(&f, n);
        let y = [-0.4, 0.9];
        let (_, _, hess) = lse.value_grad_hess(&y);
        let h = 1e-5;
        for i in 0..n {
            let mut yp = y;
            yp[i] += h;
            let mut ym = y;
            ym[i] -= h;
            let (_, gp) = lse.value_grad(&yp);
            let (_, gm) = lse.value_grad(&ym);
            for j in 0..n {
                let fd = (gp[j] - gm[j]) / (2.0 * h);
                assert!((hess[(i, j)] - fd).abs() < 1e-5, "entry ({i},{j})");
            }
        }
        // PSD check via random quadratic forms.
        for v in [[1.0, 0.0], [0.0, 1.0], [1.0, -1.0], [0.3, 0.7]] {
            let hv = hess.matvec(&v);
            assert!(crate::linalg::dot(&v, &hv) >= -1e-12);
        }
    }

    #[test]
    fn numerical_stability_with_huge_exponents() {
        let (f, n) = sample_posy();
        let lse = LogSumExp::from_posynomial(&f, n);
        let y = [400.0, 350.0]; // exp overflows without max-shift
        let v = lse.value(&y);
        assert!(v.is_finite());
        // Dominated by the 2*x*y^2 term: log2 + y0 + 2 y1.
        assert!((v - (2.0f64.ln() + 400.0 + 700.0)).abs() < 1e-9);
    }

    #[test]
    fn monomial_becomes_affine() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let m = Monomial::new(4.0, [(x, 2.0)]);
        let lse = LogSumExp::from_posynomial(&Posynomial::from(m), 1);
        assert_eq!(lse.num_terms(), 1);
        let (_, _, hess) = lse.value_grad_hess(&[1.3]);
        assert!(
            hess[(0, 0)].abs() < 1e-12,
            "affine functions have zero Hessian"
        );
    }

    #[test]
    fn slack_extension_appends_column() {
        let (f, n) = sample_posy();
        let lse = LogSumExp::from_posynomial(&f, n);
        let ext = lse.with_slack_column(n);
        assert_eq!(ext.dim(), n + 1);
        // F_ext(y, s) = F(y) - s.
        let y = [0.3, -0.7];
        let z = [0.3, -0.7, 2.0];
        assert!((ext.value(&z) - (lse.value(&y) - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn patched_lowering_reuses_unchanged_rows() {
        let (f, n) = sample_posy();
        let prior = LogSumExp::from_posynomial(&f, n);
        let mut reuse = LoweringReuse::default();
        let patched = LogSumExp::from_posynomial_patched(&f, n, &prior, &mut reuse);
        assert_eq!(patched, prior);
        assert_eq!(reuse.rows_reused, 2);
        assert_eq!(reuse.rows_relowered, 0);
    }

    #[test]
    fn coefficient_change_still_reuses_exponent_rows() {
        // Near-miss shape: same exponent structure, different coefficient.
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let f1 = Posynomial::from(Monomial::new(2.0, [(x, 1.0), (y, 2.0)]))
            + Posynomial::from(Monomial::new(3.0, [(x, -1.0)]));
        let f2 = Posynomial::from(Monomial::new(5.0, [(x, 1.0), (y, 2.0)]))
            + Posynomial::from(Monomial::new(3.0, [(x, -1.0)]));
        let prior = LogSumExp::from_posynomial(&f1, 2);
        let mut reuse = LoweringReuse::default();
        let patched = LogSumExp::from_posynomial_patched(&f2, 2, &prior, &mut reuse);
        assert_eq!(reuse.rows_reused, 2);
        assert_eq!(reuse.rows_relowered, 0);
        // Bit-identical to a fresh lowering of f2 (offsets recomputed).
        assert_eq!(patched, LogSumExp::from_posynomial(&f2, 2));
    }

    #[test]
    fn exponent_change_relowers_only_that_row() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let f1 = Posynomial::from(Monomial::new(2.0, [(x, 1.0), (y, 2.0)]))
            + Posynomial::from(Monomial::new(3.0, [(x, -1.0)]));
        let f2 = Posynomial::from(Monomial::new(2.0, [(x, 1.0), (y, 3.0)]))
            + Posynomial::from(Monomial::new(3.0, [(x, -1.0)]));
        let prior = LogSumExp::from_posynomial(&f1, 2);
        let mut reuse = LoweringReuse::default();
        let patched = LogSumExp::from_posynomial_patched(&f2, 2, &prior, &mut reuse);
        assert_eq!(reuse.rows_reused, 1);
        assert_eq!(reuse.rows_relowered, 1);
        assert_eq!(patched, LogSumExp::from_posynomial(&f2, 2));
    }

    #[test]
    fn patched_problem_matches_fresh_lowering() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let obj = Posynomial::from_var(x) + Posynomial::from_var(y);
        let ineq = Posynomial::from(Monomial::new(16.0, [(x, -1.0), (y, -1.0)]));
        let eq = Monomial::new(1.0 / 4.0, [(x, 1.0)]);
        let prior = TransformedProblem::new(
            2,
            &obj,
            std::slice::from_ref(&ineq),
            std::slice::from_ref(&eq),
        );
        // Near-miss: the inequality coefficient changes (16 -> 18).
        let ineq2 = Posynomial::from(Monomial::new(18.0, [(x, -1.0), (y, -1.0)]));
        let (tp, reuse) = TransformedProblem::new_patched(
            2,
            &obj,
            std::slice::from_ref(&ineq2),
            std::slice::from_ref(&eq),
            &prior,
        );
        let fresh = TransformedProblem::new(2, &obj, &[ineq2], &[eq]);
        assert_eq!(tp.objective, fresh.objective);
        assert_eq!(tp.inequalities, fresh.inequalities);
        assert_eq!(tp.eq_rhs, fresh.eq_rhs);
        assert_eq!(reuse.rows_reused, 3); // 2 objective terms + 1 inequality row
        assert_eq!(reuse.rows_relowered, 0);
    }

    #[test]
    fn equalities_transform_to_linear_rows() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        // x^2 / y = 5  =>  2 log x - log y = log 5
        let eq = Monomial::new(1.0 / 5.0, [(x, 2.0), (y, -1.0)]);
        let tp = TransformedProblem::new(2, &Posynomial::from_var(x), &[], &[eq]);
        assert_eq!(tp.eq_matrix.rows(), 1);
        assert!((tp.eq_matrix[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((tp.eq_matrix[(0, 1)] + 1.0).abs() < 1e-12);
        assert!((tp.eq_rhs[0] - 5.0f64.ln()).abs() < 1e-12);
        // A feasible x: x=5, y=5 => y-point (ln5, ln5)
        let yv = [5.0f64.ln(), 5.0f64.ln()];
        let r = tp.eq_matrix.matvec(&yv);
        assert!(norm2(&[r[0] - tp.eq_rhs[0]]) < 1e-12);
    }
}
