//! The log-log transform from geometric programs to smooth convex programs.
//!
//! Under `y = log x`, a monomial `c * prod x_i^{a_i}` becomes the affine
//! function `a^T y + log c` and a posynomial becomes a log-sum-exp of affine
//! functions. A GP in standard form therefore becomes
//!
//! ```text
//! minimize    F0(y)            (log-sum-exp, convex)
//! subject to  Fi(y) <= 0       (log of posynomial constraints)
//!             A y = b          (log of monomial equalities)
//! ```
//!
//! which the barrier solver in this crate handles directly.

use crate::linalg::Matrix;
use thistle_expr::{Monomial, Posynomial};

/// A function `F(y) = log sum_k exp(a_k^T y + b_k)` — the log-log image of a
/// posynomial.
///
/// Evaluation shifts by the max exponent for numerical stability; gradient
/// and Hessian use the standard softmax identities:
/// `grad F = sum_k p_k a_k` and
/// `hess F = sum_k p_k a_k a_k^T - (grad F)(grad F)^T`
/// with `p_k` the softmax weights. The Hessian is positive semidefinite, as
/// convexity demands.
#[derive(Debug, Clone, PartialEq)]
pub struct LogSumExp {
    /// One row of exponents per monomial, each of length `n`.
    rows: Vec<Vec<f64>>,
    /// `log c_k` per monomial.
    offsets: Vec<f64>,
    n: usize,
}

impl LogSumExp {
    /// Builds the log-log image of `p` over `n` variables (indexed by
    /// [`thistle_expr::Var::index`]).
    pub fn from_posynomial(p: &Posynomial, n: usize) -> Self {
        let mut rows = Vec::with_capacity(p.num_terms());
        let mut offsets = Vec::with_capacity(p.num_terms());
        for m in p.monomials() {
            let (row, b) = affine_of_monomial(&m, n);
            rows.push(row);
            offsets.push(b);
        }
        LogSumExp { rows, offsets, n }
    }

    /// Number of exponential terms.
    pub fn num_terms(&self) -> usize {
        self.rows.len()
    }

    /// Read-only view of the exponent rows and offsets (used to build
    /// phase-I extensions).
    pub(crate) fn raw_parts(&self) -> (&[Vec<f64>], &[f64]) {
        (&self.rows, &self.offsets)
    }

    /// Builds a function directly from exponent rows and `log`-offsets.
    pub(crate) fn from_raw(rows: Vec<Vec<f64>>, offsets: Vec<f64>, n: usize) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == n));
        LogSumExp { rows, offsets, n }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// `F(y)`.
    pub fn value(&self, y: &[f64]) -> f64 {
        debug_assert_eq!(y.len(), self.n);
        let mut mx = f64::NEG_INFINITY;
        for (row, &b) in self.rows.iter().zip(&self.offsets) {
            let g = dot_row(row, y) + b;
            if g > mx {
                mx = g;
            }
        }
        let z: f64 = self
            .rows
            .iter()
            .zip(&self.offsets)
            .map(|(row, &b)| (dot_row(row, y) + b - mx).exp())
            .sum();
        mx + z.ln()
    }

    /// `F(y)` and `grad F(y)`.
    pub fn value_grad(&self, y: &[f64]) -> (f64, Vec<f64>) {
        let (v, g, _) = self.eval_full(y, false);
        (v, g)
    }

    /// `F(y)`, `grad F(y)` and `hess F(y)` in one pass.
    pub fn value_grad_hess(&self, y: &[f64]) -> (f64, Vec<f64>, Matrix) {
        let (v, g, h) = self.eval_full(y, true);
        (v, g, h.expect("hessian requested"))
    }

    fn eval_full(&self, y: &[f64], want_hess: bool) -> (f64, Vec<f64>, Option<Matrix>) {
        debug_assert_eq!(y.len(), self.n);
        let gs: Vec<f64> = self
            .rows
            .iter()
            .zip(&self.offsets)
            .map(|(row, &b)| dot_row(row, y) + b)
            .collect();
        let mx = gs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ws: Vec<f64> = gs.iter().map(|g| (g - mx).exp()).collect();
        let z: f64 = ws.iter().sum();
        let value = mx + z.ln();

        let mut grad = vec![0.0; self.n];
        for (row, &w) in self.rows.iter().zip(&ws) {
            let p = w / z;
            for (g, &a) in grad.iter_mut().zip(row) {
                *g += p * a;
            }
        }
        let hess = want_hess.then(|| {
            let mut h = Matrix::zeros(self.n, self.n);
            for (row, &w) in self.rows.iter().zip(&ws) {
                h.add_outer(w / z, row);
            }
            h.add_outer(-1.0, &grad);
            h
        });
        (value, grad, hess)
    }
}

/// A GP in log-space, ready for the barrier solver.
#[derive(Debug, Clone)]
pub struct TransformedProblem {
    /// Objective `F0`.
    pub objective: LogSumExp,
    /// Inequalities `Fi(y) <= 0`.
    pub inequalities: Vec<LogSumExp>,
    /// Equality rows `A y = b` (may have zero rows).
    pub eq_matrix: Matrix,
    /// Equality right-hand side.
    pub eq_rhs: Vec<f64>,
    /// Number of variables.
    pub n: usize,
}

impl TransformedProblem {
    /// Assembles the log-space problem from GP pieces.
    ///
    /// `inequalities` are posynomials `g` with the meaning `g(x) <= 1`;
    /// `equalities` are monomials `m` with the meaning `m(x) = 1`.
    pub fn new(
        n: usize,
        objective: &Posynomial,
        inequalities: &[Posynomial],
        equalities: &[Monomial],
    ) -> Self {
        let objective = LogSumExp::from_posynomial(objective, n);
        let ineqs = inequalities
            .iter()
            .map(|g| LogSumExp::from_posynomial(g, n))
            .collect();
        let mut eq_matrix = Matrix::zeros(equalities.len(), n);
        let mut eq_rhs = vec![0.0; equalities.len()];
        for (i, m) in equalities.iter().enumerate() {
            let (row, b) = affine_of_monomial(m, n);
            for (j, &a) in row.iter().enumerate() {
                eq_matrix[(i, j)] = a;
            }
            // a^T y + log c = 0  =>  a^T y = -log c
            eq_rhs[i] = -b;
        }
        TransformedProblem {
            objective,
            inequalities: ineqs,
            eq_matrix,
            eq_rhs,
            n,
        }
    }

    /// Maps a log-space point back to GP variable values `x = exp(y)`.
    pub fn to_gp_point(&self, y: &[f64]) -> Vec<f64> {
        y.iter().map(|v| v.exp()).collect()
    }
}

fn affine_of_monomial(m: &Monomial, n: usize) -> (Vec<f64>, f64) {
    let mut row = vec![0.0; n];
    for (v, a) in m.powers() {
        assert!(
            v.index() < n,
            "monomial references variable {} outside problem dimension {n}",
            v.index()
        );
        row[v.index()] = a;
    }
    (row, m.coeff().ln())
}

fn dot_row(row: &[f64], y: &[f64]) -> f64 {
    row.iter().zip(y).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::norm2;
    use thistle_expr::VarRegistry;

    fn sample_posy() -> (Posynomial, usize) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        // f = 2 x y^2 + 3 / x
        let f = Posynomial::from(Monomial::new(2.0, [(x, 1.0), (y, 2.0)]))
            + Posynomial::from(Monomial::new(3.0, [(x, -1.0)]));
        (f, reg.len())
    }

    #[test]
    fn value_matches_direct_eval() {
        let (f, n) = sample_posy();
        let lse = LogSumExp::from_posynomial(&f, n);
        let y = [0.3f64, -0.7];
        let x: Vec<f64> = y.iter().map(|v| v.exp()).collect();
        let direct: f64 = 2.0 * x[0] * x[1] * x[1] + 3.0 / x[0];
        assert!((lse.value(&y) - direct.ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (f, n) = sample_posy();
        let lse = LogSumExp::from_posynomial(&f, n);
        let y = [0.2, 0.5];
        let (_, grad) = lse.value_grad(&y);
        let h = 1e-6;
        for i in 0..n {
            let mut yp = y;
            yp[i] += h;
            let mut ym = y;
            ym[i] -= h;
            let fd = (lse.value(&yp) - lse.value(&ym)) / (2.0 * h);
            assert!((grad[i] - fd).abs() < 1e-6, "component {i}");
        }
    }

    #[test]
    fn hessian_matches_finite_differences_and_is_psd() {
        let (f, n) = sample_posy();
        let lse = LogSumExp::from_posynomial(&f, n);
        let y = [-0.4, 0.9];
        let (_, _, hess) = lse.value_grad_hess(&y);
        let h = 1e-5;
        for i in 0..n {
            let mut yp = y;
            yp[i] += h;
            let mut ym = y;
            ym[i] -= h;
            let (_, gp) = lse.value_grad(&yp);
            let (_, gm) = lse.value_grad(&ym);
            for j in 0..n {
                let fd = (gp[j] - gm[j]) / (2.0 * h);
                assert!((hess[(i, j)] - fd).abs() < 1e-5, "entry ({i},{j})");
            }
        }
        // PSD check via random quadratic forms.
        for v in [[1.0, 0.0], [0.0, 1.0], [1.0, -1.0], [0.3, 0.7]] {
            let hv = hess.matvec(&v);
            assert!(crate::linalg::dot(&v, &hv) >= -1e-12);
        }
    }

    #[test]
    fn numerical_stability_with_huge_exponents() {
        let (f, n) = sample_posy();
        let lse = LogSumExp::from_posynomial(&f, n);
        let y = [400.0, 350.0]; // exp overflows without max-shift
        let v = lse.value(&y);
        assert!(v.is_finite());
        // Dominated by the 2*x*y^2 term: log2 + y0 + 2 y1.
        assert!((v - (2.0f64.ln() + 400.0 + 700.0)).abs() < 1e-9);
    }

    #[test]
    fn monomial_becomes_affine() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let m = Monomial::new(4.0, [(x, 2.0)]);
        let lse = LogSumExp::from_posynomial(&Posynomial::from(m), 1);
        assert_eq!(lse.num_terms(), 1);
        let (_, _, hess) = lse.value_grad_hess(&[1.3]);
        assert!(
            hess[(0, 0)].abs() < 1e-12,
            "affine functions have zero Hessian"
        );
    }

    #[test]
    fn equalities_transform_to_linear_rows() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        // x^2 / y = 5  =>  2 log x - log y = log 5
        let eq = Monomial::new(1.0 / 5.0, [(x, 2.0), (y, -1.0)]);
        let tp = TransformedProblem::new(2, &Posynomial::from_var(x), &[], &[eq]);
        assert_eq!(tp.eq_matrix.rows(), 1);
        assert!((tp.eq_matrix[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((tp.eq_matrix[(0, 1)] + 1.0).abs() < 1e-12);
        assert!((tp.eq_rhs[0] - 5.0f64.ln()).abs() < 1e-12);
        // A feasible x: x=5, y=5 => y-point (ln5, ln5)
        let yv = [5.0f64.ln(), 5.0f64.ln()];
        let r = tp.eq_matrix.matvec(&yv);
        assert!(norm2(&[r[0] - tp.eq_rhs[0]]) < 1e-12);
    }
}
