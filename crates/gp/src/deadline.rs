//! Cooperative cancellation for long-running solves.
//!
//! A [`Deadline`] is a cheap clonable handle combining an optional shared
//! cancel flag with an optional wall-clock expiry. The barrier solver polls
//! [`Deadline::expired`] once per Newton iteration and per centering step,
//! so an abandoned solve (a timed-out serve request, a shut-down pool)
//! stops within one iteration instead of burning a worker to completion.
//!
//! Cancellation is *cooperative state*, not solver configuration: it is
//! passed alongside `SolveOptions`, never inside them, so it can never leak
//! into solver fingerprints or cache keys.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cancellation token plus optional expiry instant. Clones share the
/// cancel flag: cancelling any clone cancels them all.
///
/// The default value never expires and cannot be cancelled, making it the
/// zero-cost choice for synchronous callers.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    flag: Option<Arc<AtomicBool>>,
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires ([`Default`]).
    pub fn none() -> Self {
        Deadline::default()
    }

    /// A pure cancellation token: expires only when [`cancel`](Self::cancel)
    /// is called on any clone.
    pub fn token() -> Self {
        Deadline {
            flag: Some(Arc::new(AtomicBool::new(false))),
            at: None,
        }
    }

    /// A cancellable deadline that also expires `timeout` from now.
    pub fn within(timeout: Duration) -> Self {
        Deadline {
            flag: Some(Arc::new(AtomicBool::new(false))),
            at: Instant::now().checked_add(timeout),
        }
    }

    /// Cancels this deadline and every clone of it. A no-op on
    /// [`Deadline::none`].
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Release);
        }
    }

    /// Whether the deadline has been cancelled or its expiry has passed.
    #[inline]
    pub fn expired(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Acquire) {
                return true;
            }
        }
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires_and_ignores_cancel() {
        let d = Deadline::none();
        assert!(!d.expired());
        d.cancel();
        assert!(!d.expired());
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let d = Deadline::token();
        let clone = d.clone();
        assert!(!clone.expired());
        d.cancel();
        assert!(clone.expired());
    }

    #[test]
    fn zero_timeout_is_immediately_expired() {
        assert!(Deadline::within(Duration::ZERO).expired());
        assert!(!Deadline::within(Duration::from_secs(3600)).expired());
    }
}
