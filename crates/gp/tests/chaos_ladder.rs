//! Chaos tests for the solver recovery ladder: inject deterministic
//! numerical failures via `thistle-fault` and check that each rung rescues
//! (or correctly gives up on) the solve.
//!
//! Compiled only with `--features fault-inject`; plan guards serialize the
//! tests against the process-global registry.
#![cfg(feature = "fault-inject")]

use thistle_expr::{Monomial, Posynomial, VarRegistry};
use thistle_fault::FaultPlan;
use thistle_gp::{Deadline, GpError, GpProblem, RecoveryRung, Solution, SolveOptions, SolveStatus};

/// min x + y s.t. x*y >= 8 — optimum x = y = sqrt(8), objective 2*sqrt(8).
fn sample_problem() -> GpProblem {
    let mut reg = VarRegistry::new();
    let x = reg.var("x");
    let y = reg.var("y");
    let mut prob = GpProblem::new(reg);
    prob.set_objective(Posynomial::from_var(x) + Posynomial::from_var(y));
    prob.add_le(
        Posynomial::from(Monomial::new(8.0, [(x, -1.0), (y, -1.0)])),
        Monomial::one(),
    );
    prob
}

fn solve_under(plan: &str) -> Result<Solution, GpError> {
    let _guard = FaultPlan::parse(plan).unwrap().install();
    sample_problem().solve(&SolveOptions::default())
}

fn assert_near_optimum(sol: &Solution, tol: f64) {
    let expected = 2.0 * 8.0f64.sqrt();
    assert!(
        (sol.objective - expected).abs() < tol,
        "objective {} vs {expected}",
        sol.objective
    );
}

#[test]
fn healthy_solve_uses_one_attempt() {
    let sol = solve_under("").unwrap();
    assert_eq!(sol.recovery.attempts, 1);
    assert_eq!(sol.recovery.recovered_by, None);
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert_near_optimum(&sol, 1e-4);
}

#[test]
fn nan_iterate_recovered_by_tikhonov_rung() {
    // Keyed on the attempt index: attempt 0 is poisoned, attempt 1 is not.
    let sol = solve_under("gp.solve.nan<1").unwrap();
    assert_eq!(sol.recovery.attempts, 2);
    assert_eq!(sol.recovery.recovered_by, Some(RecoveryRung::TikhonovRidge));
    assert_near_optimum(&sol, 1e-4);
}

#[test]
fn persistent_nan_reaches_perturbed_restart() {
    let sol = solve_under("gp.solve.nan<2").unwrap();
    assert_eq!(sol.recovery.attempts, 3);
    assert_eq!(
        sol.recovery.recovered_by,
        Some(RecoveryRung::PerturbedRestart)
    );
    assert_near_optimum(&sol, 1e-4);
}

#[test]
fn last_rung_relaxes_tolerance_and_reports_degraded() {
    let sol = solve_under("gp.solve.nan<3").unwrap();
    assert_eq!(sol.recovery.attempts, 4);
    assert_eq!(
        sol.recovery.recovered_by,
        Some(RecoveryRung::RelaxedTolerance)
    );
    assert_eq!(sol.status, SolveStatus::Degraded);
    // 1e4x looser gap tolerance still lands close on this small problem.
    assert_near_optimum(&sol, 1e-2);
}

#[test]
fn exhausted_ladder_surfaces_numerical_failure() {
    let err = solve_under("gp.solve.nan<4").unwrap_err();
    assert!(
        matches!(&err, GpError::NumericalFailure(m) if m.contains("recovery ladder")),
        "{err:?}"
    );
}

#[test]
fn singular_kkt_recovered_by_ladder() {
    let sol = solve_under("gp.kkt.singular<1").unwrap();
    assert_eq!(sol.recovery.recovered_by, Some(RecoveryRung::TikhonovRidge));
    assert_near_optimum(&sol, 1e-4);
}

#[test]
fn divergence_recovered_by_ladder() {
    let sol = solve_under("gp.solve.diverge<1").unwrap();
    assert_eq!(sol.recovery.recovered_by, Some(RecoveryRung::TikhonovRidge));
    assert_near_optimum(&sol, 1e-4);
}

#[test]
fn recovered_solution_matches_healthy_one_closely() {
    let healthy = solve_under("").unwrap();
    let recovered = solve_under("gp.solve.nan<1").unwrap();
    // The Tikhonov rung starts from the same point with a tiny extra ridge;
    // it must land on the same optimum to solver accuracy.
    assert!((healthy.objective - recovered.objective).abs() < 1e-6);
}

#[test]
fn cancelled_deadline_is_not_retried_by_the_ladder() {
    let deadline = Deadline::token();
    deadline.cancel();
    let err = sample_problem()
        .solve_cancellable(
            &SolveOptions::default(),
            &deadline,
            &thistle_obs::TraceCtx::disabled(),
        )
        .unwrap_err();
    assert_eq!(err, GpError::Cancelled);
}

#[test]
fn zero_duration_deadline_cancels_immediately() {
    let err = sample_problem()
        .solve_cancellable(
            &SolveOptions::default(),
            &Deadline::within(std::time::Duration::ZERO),
            &thistle_obs::TraceCtx::disabled(),
        )
        .unwrap_err();
    assert_eq!(err, GpError::Cancelled);
}
