//! thistle-atlas: a durable atlas of the accelerator-dataflow design
//! space.
//!
//! The serve tier caches solved [`DesignPoint`](thistle::DesignPoint)s by
//! canonical query, but a process restart empties the cache and every
//! near-identical query re-solves from scratch. This crate turns that
//! cache into a persistent, queryable atlas:
//!
//! * [`AtlasSnapshot`] — a versioned, checksummed, dependency-free binary
//!   format serializing the canonical-key → design-point LRU (plus
//!   precomputed Pareto frontiers) to disk. Saves are atomic
//!   (write-to-temp + rename); loads are corruption-tolerant (damaged
//!   records are skipped and counted, never fatal).
//! * [`ParetoFrontier`] / [`compute_frontier`] — per-workload-family
//!   (area, energy, delay) trade surfaces sampled through the co-design
//!   GP sweep and reduced to their nondominated subset.
//!
//! * [`TimeSeriesFile`] — the same codec turned into an append-oriented,
//!   size-bounded ring of fingerprint-stamped metrics-registry snapshots,
//!   backing the serve tier's durable `/debug/timeseries` (DESIGN.md §13).
//!
//! The serving layer (`thistle-serve`) owns *when* to checkpoint and how
//! to warm-start near-miss queries from restored entries; this crate owns
//! the durable artifact itself. The format specification lives in
//! DESIGN.md §12.

pub mod codec;
pub mod pareto;
pub mod snapshot;
pub mod timeseries;

pub use codec::{crc32, ByteReader, ByteWriter, CodecError};
pub use pareto::{
    compute_frontier, nondominated, ParetoFrontier, ParetoPoint, DEFAULT_BUDGET_FRACTIONS,
};
pub use snapshot::{AtlasSnapshot, LoadResult, MAGIC, VERSION};
pub use timeseries::{
    fingerprint_digest, TimeSeriesFile, TimeSeriesLoad, TimeSeriesRecord, TS_MAGIC, TS_VERSION,
};
