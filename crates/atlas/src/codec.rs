//! Byte-level primitives of the atlas snapshot format.
//!
//! Everything is little-endian. Floats travel as their IEEE-754 bit
//! patterns, so a round trip is bit-identical — including NaNs and signed
//! zeros — which the cache-key semantics require (canonical keys compare
//! `f64` fields by bits, not by value).

use std::fmt;

/// CRC-32 (IEEE 802.3, reflected polynomial), bitwise. Records are a few
/// kilobytes at most, so a table-free implementation is plenty fast and
/// keeps the format self-contained.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a record failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value it promised.
    Truncated,
    /// A discriminant byte holds an unknown value.
    BadDiscriminant(&'static str, u64),
    /// A length prefix is implausible for its container.
    BadLength(&'static str, u64),
    /// A string is not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated"),
            CodecError::BadDiscriminant(what, v) => {
                write!(f, "unknown {what} discriminant {v}")
            }
            CodecError::BadLength(what, v) => write!(f, "implausible {what} length {v}"),
            CodecError::BadUtf8 => write!(f, "string is not UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink for encoding one record.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    pub fn put_f64_bits(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u64(v);
        }
    }

    pub fn put_usize_slice(&mut self, vs: &[usize]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u64(v as u64);
        }
    }

    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u32(v);
        }
    }

    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_f64_bits(v);
        }
    }
}

/// Guard against hostile or garbled length prefixes: no vector in a design
/// point legitimately exceeds this.
const MAX_SEQ: u64 = 1 << 20;

/// Cursor over one record's payload.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        Ok(self.get_u64()? as usize)
    }

    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CodecError::BadDiscriminant("bool", u64::from(v))),
        }
    }

    pub fn get_f64_bits(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    fn get_len(&mut self, what: &'static str) -> Result<usize, CodecError> {
        let len = u64::from(self.get_u32()?);
        if len > MAX_SEQ {
            return Err(CodecError::BadLength(what, len));
        }
        Ok(len as usize)
    }

    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_len("string")?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.get_len("u64 vec")?;
        (0..len).map(|_| self.get_u64()).collect()
    }

    pub fn get_usize_vec(&mut self) -> Result<Vec<usize>, CodecError> {
        let len = self.get_len("usize vec")?;
        (0..len).map(|_| self.get_usize()).collect()
    }

    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, CodecError> {
        let len = self.get_len("u32 vec")?;
        (0..len).map(|_| self.get_u32()).collect()
    }

    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.get_len("f64 vec")?;
        (0..len).map(|_| self.get_f64_bits()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64_bits(f64::NAN);
        w.put_f64_bits(-0.0);
        w.put_str("thistle");
        w.put_u64_slice(&[1, 2, 3]);
        w.put_f64_slice(&[1.5, f64::INFINITY]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64_bits().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.get_f64_bits().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_str().unwrap(), "thistle");
        assert_eq!(r.get_u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_f64_vec().unwrap(), vec![1.5, f64::INFINITY]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_and_bad_discriminants_are_reported() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.get_u32(), Err(CodecError::Truncated));
        let mut r = ByteReader::new(&[9]);
        assert!(matches!(
            r.get_bool(),
            Err(CodecError::BadDiscriminant("bool", 9))
        ));
        // A hostile length prefix must not trigger a huge allocation.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_u64_vec(), Err(CodecError::BadLength(_, _))));
    }
}
