//! Durable metrics time-series: periodic [`RegistrySnapshot`]s appended to a
//! CRC-framed ring file, stamped with the solver fingerprint and build info
//! so segments recorded by different binary versions (or across restarts)
//! stay attributable.
//!
//! File layout (all integers little-endian), mirroring the atlas snapshot
//! format but append-oriented:
//!
//! ```text
//!   magic    "THISTLTS"                  8 bytes
//!   version  u32 le                      format revision
//!   flags    u32 le                      reserved, must be 0
//!   record*  [len u32][crc32 u32][payload]
//! ```
//!
//! Each payload starts with a kind byte (currently only [`KIND_SAMPLE`]) so
//! the format can grow annotation records later without a version bump.
//! Loading is corruption-tolerant with the same policy as
//! [`crate::AtlasSnapshot::load`]: a CRC mismatch skips one record, bad
//! framing ends the scan, and everything decoded up to that point survives.
//!
//! The "ring" is logical, not positional: records are appended, and once the
//! file holds more than `max_records` the writer compacts it — rewriting the
//! newest `max_records` through a tmp file + atomic rename, so readers never
//! observe a torn file and history is bounded without fixed-size slots.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::codec::{crc32, ByteReader, ByteWriter, CodecError};
use thistle_obs::registry::{CounterSample, GaugeSample, HistogramSample, HistogramSummary};
use thistle_obs::RegistrySnapshot;

/// File magic for time-series files.
pub const TS_MAGIC: [u8; 8] = *b"THISTLTS";

/// Format revision. Bump on any layout change.
pub const TS_VERSION: u32 = 1;

/// Payload kind: one fingerprint-stamped registry sample.
const KIND_SAMPLE: u8 = 1;

/// A registry snapshot is a few KB at most; anything bigger is garbage.
const MAX_RECORD: u32 = 4 << 20;

/// One fingerprint-stamped, wall-clock-dated registry sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesRecord {
    /// Wall-clock milliseconds since the unix epoch at sample time.
    pub ts_unix_ms: u64,
    /// `SolverFingerprint::encode_words()` of the serving optimizer — kept
    /// as raw words so a reader never rejects a sample from a config its
    /// own binary cannot decode.
    pub fingerprint_words: Vec<u64>,
    /// Human-readable build stamp (crate version), e.g. `"thistle-serve 0.1.0"`.
    pub build: String,
    /// The metrics registry at sample time.
    pub snapshot: RegistrySnapshot,
}

impl TimeSeriesRecord {
    /// A record stamped with the current wall clock.
    pub fn now(
        fingerprint_words: Vec<u64>,
        build: String,
        snapshot: RegistrySnapshot,
    ) -> TimeSeriesRecord {
        TimeSeriesRecord {
            ts_unix_ms: unix_ms(),
            fingerprint_words,
            build,
            snapshot,
        }
    }

    /// Short stable digest of the fingerprint words, for display and for
    /// grouping records into same-config segments.
    pub fn fingerprint_digest(&self) -> String {
        fingerprint_digest(&self.fingerprint_words)
    }
}

/// 8-hex-char digest of encoded fingerprint words (CRC32 over the
/// little-endian bytes). Collision-tolerant use only: segment labels.
pub fn fingerprint_digest(words: &[u64]) -> String {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    format!("{:08x}", crc32(&bytes))
}

/// Wall-clock milliseconds since the unix epoch (0 if the clock is before
/// the epoch, which only a badly misconfigured host produces).
pub fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// What a tolerant load recovered.
#[derive(Debug, Default)]
pub struct TimeSeriesLoad {
    /// Records in file (append) order.
    pub records: Vec<TimeSeriesRecord>,
    /// Damaged or undecodable records dropped along the way.
    pub skipped_records: u64,
}

/// Handle to one time-series file: append-with-compaction writer plus
/// tolerant reader. Cheap to construct; the file is opened per operation.
#[derive(Debug)]
pub struct TimeSeriesFile {
    path: PathBuf,
    max_records: usize,
    /// Cached record count, populated lazily by the first append.
    count: Mutex<Option<usize>>,
}

impl TimeSeriesFile {
    /// A handle on `path` retaining at most `max_records` samples (minimum
    /// 2, so restart-continuity across a compaction is always visible).
    pub fn open(path: impl Into<PathBuf>, max_records: usize) -> TimeSeriesFile {
        TimeSeriesFile {
            path: path.into(),
            max_records: max_records.max(2),
            count: Mutex::new(None),
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record, creating the file (with header) on first use and
    /// compacting down to the newest `max_records` when the bound is hit.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; a concurrent reader never sees a torn
    /// header because the header and each record are single `write_all`s.
    pub fn append(&self, record: &TimeSeriesRecord) -> io::Result<()> {
        let mut count = lock_count(&self.count);
        if count.is_none() {
            *count = Some(self.scan_count()?);
        }
        let fresh =
            !self.path.exists() || std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0) == 0;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        if fresh {
            let mut header = Vec::with_capacity(16);
            header.extend_from_slice(&TS_MAGIC);
            header.extend_from_slice(&TS_VERSION.to_le_bytes());
            header.extend_from_slice(&0u32.to_le_bytes());
            file.write_all(&header)?;
            *count = Some(0);
        }
        let payload = encode_sample(record);
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        file.write_all(&framed)?;
        file.sync_all()?;
        let now = count.map_or(1, |c| c + 1);
        *count = Some(now);
        if now > self.max_records {
            *count = Some(self.compact()?);
        }
        Ok(())
    }

    /// Loads every decodable record. A missing file is an empty series, not
    /// an error; header/framing/CRC damage follows the atlas policy
    /// (skip-and-continue for CRC, stop-scan for framing).
    ///
    /// # Errors
    ///
    /// Only unreadable files and wrong magic/version fail the whole load.
    pub fn load(&self) -> io::Result<TimeSeriesLoad> {
        let mut bytes = Vec::new();
        match std::fs::File::open(&self.path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(TimeSeriesLoad::default()),
            Err(e) => return Err(e),
        }
        load_bytes(&bytes)
    }

    /// Counts framed records without decoding payloads (lazy init for the
    /// append-side bound check).
    fn scan_count(&self) -> io::Result<usize> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        if bytes.len() < 16 || bytes[..8] != TS_MAGIC {
            return Ok(0);
        }
        let mut pos = 16usize;
        let mut n = 0usize;
        while bytes.len() - pos >= 8 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            pos += 8;
            if len > MAX_RECORD || bytes.len() - pos < len as usize {
                break;
            }
            pos += len as usize;
            n += 1;
        }
        Ok(n)
    }

    /// Rewrites the file keeping only the newest `max_records`, atomically
    /// (tmp + rename). Returns the surviving record count.
    fn compact(&self) -> io::Result<usize> {
        let loaded = self.load()?;
        let keep_from = loaded.records.len().saturating_sub(self.max_records);
        let kept = &loaded.records[keep_from..];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TS_MAGIC);
        bytes.extend_from_slice(&TS_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        for record in kept {
            let payload = encode_sample(record);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        let tmp = self
            .path
            .with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        match std::fs::rename(&tmp, &self.path) {
            Ok(()) => Ok(kept.len()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

use std::io;

fn lock_count(m: &Mutex<Option<usize>>) -> std::sync::MutexGuard<'_, Option<usize>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Tolerant decode of a whole file image (exposed for tests).
fn load_bytes(bytes: &[u8]) -> io::Result<TimeSeriesLoad> {
    if bytes.len() < 16 || bytes[..8] != TS_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a thistle time-series file (bad magic)",
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != TS_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported time-series version {version} (want {TS_VERSION})"),
        ));
    }
    let mut out = TimeSeriesLoad::default();
    let mut pos = 16usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            out.skipped_records += 1; // torn tail from a crash mid-append
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        pos += 8;
        if len > MAX_RECORD || bytes.len() - pos < len as usize {
            out.skipped_records += 1;
            break;
        }
        let payload = &bytes[pos..pos + len as usize];
        pos += len as usize;
        if crc32(payload) != crc {
            out.skipped_records += 1;
            continue;
        }
        match decode_sample(payload) {
            Ok(Some(record)) => out.records.push(record),
            Ok(None) => {} // unknown kind: a newer writer's record
            Err(_) => out.skipped_records += 1,
        }
    }
    Ok(out)
}

fn encode_sample(record: &TimeSeriesRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(KIND_SAMPLE);
    w.put_u64(record.ts_unix_ms);
    w.put_u64_slice(&record.fingerprint_words);
    w.put_str(&record.build);
    let snap = &record.snapshot;
    w.put_u32(snap.counters.len() as u32);
    for c in &snap.counters {
        w.put_str(&c.name);
        put_label(&mut w, &c.label);
        w.put_u64(c.value);
    }
    w.put_u32(snap.gauges.len() as u32);
    for g in &snap.gauges {
        w.put_str(&g.name);
        w.put_u64(g.value);
    }
    w.put_u32(snap.histograms.len() as u32);
    for h in &snap.histograms {
        w.put_str(&h.name);
        put_label(&mut w, &h.label);
        w.put_u64(h.summary.count);
        w.put_f64_bits(h.summary.p50);
        w.put_f64_bits(h.summary.p95);
    }
    w.into_bytes()
}

fn decode_sample(payload: &[u8]) -> Result<Option<TimeSeriesRecord>, CodecError> {
    let mut r = ByteReader::new(payload);
    if r.get_u8()? != KIND_SAMPLE {
        return Ok(None);
    }
    let ts_unix_ms = r.get_u64()?;
    let fingerprint_words = r.get_u64_vec()?;
    let build = r.get_str()?;
    let mut snapshot = RegistrySnapshot {
        counters: Vec::new(),
        gauges: Vec::new(),
        histograms: Vec::new(),
    };
    for _ in 0..r.get_u32()? {
        let name = r.get_str()?;
        let label = get_label(&mut r)?;
        let value = r.get_u64()?;
        snapshot.counters.push(CounterSample { name, label, value });
    }
    for _ in 0..r.get_u32()? {
        let name = r.get_str()?;
        let value = r.get_u64()?;
        snapshot.gauges.push(GaugeSample { name, value });
    }
    for _ in 0..r.get_u32()? {
        let name = r.get_str()?;
        let label = get_label(&mut r)?;
        let summary = HistogramSummary {
            count: r.get_u64()?,
            p50: r.get_f64_bits()?,
            p95: r.get_f64_bits()?,
        };
        snapshot.histograms.push(HistogramSample {
            name,
            label,
            summary,
        });
    }
    Ok(Some(TimeSeriesRecord {
        ts_unix_ms,
        fingerprint_words,
        build,
        snapshot,
    }))
}

fn put_label(w: &mut ByteWriter, label: &Option<(String, String)>) {
    match label {
        None => w.put_bool(false),
        Some((k, v)) => {
            w.put_bool(true);
            w.put_str(k);
            w.put_str(v);
        }
    }
}

fn get_label(r: &mut ByteReader<'_>) -> Result<Option<(String, String)>, CodecError> {
    if r.get_bool()? {
        Ok(Some((r.get_str()?, r.get_str()?)))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u64) -> TimeSeriesRecord {
        TimeSeriesRecord {
            ts_unix_ms: 1_700_000_000_000 + i,
            fingerprint_words: vec![i, i + 1, i + 2],
            build: format!("thistle-serve 0.1.{i}"),
            snapshot: RegistrySnapshot {
                counters: vec![CounterSample {
                    name: "requests_total".into(),
                    label: Some(("layer".into(), format!("conv{i}"))),
                    value: 10 * i,
                }],
                gauges: vec![GaugeSample {
                    name: "inflight".into(),
                    value: i,
                }],
                histograms: vec![HistogramSample {
                    name: "solve_ms".into(),
                    label: None,
                    summary: HistogramSummary {
                        count: i,
                        p50: 1.5,
                        p95: 9.75,
                    },
                }],
            },
        }
    }

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("thistle-ts-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn append_load_roundtrip() {
        let path = temp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let ts = TimeSeriesFile::open(&path, 100);
        for i in 0..5 {
            ts.append(&record(i)).expect("append");
        }
        let loaded = ts.load().expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.skipped_records, 0);
        assert_eq!(loaded.records.len(), 5);
        assert_eq!(loaded.records[3], record(3));
        assert_eq!(loaded.records[3].fingerprint_digest().len(), 8);
    }

    #[test]
    fn ring_bound_keeps_newest() {
        let path = temp("ring");
        let _ = std::fs::remove_file(&path);
        let ts = TimeSeriesFile::open(&path, 4);
        for i in 0..10 {
            ts.append(&record(i)).expect("append");
        }
        let loaded = ts.load().expect("load");
        std::fs::remove_file(&path).ok();
        assert!(
            loaded.records.len() <= 5,
            "bounded to max_records (+1 in-flight), got {}",
            loaded.records.len()
        );
        let last = loaded.records.last().expect("nonempty");
        assert_eq!(last.ts_unix_ms, record(9).ts_unix_ms);
    }

    #[test]
    fn reopened_handle_respects_existing_count() {
        let path = temp("reopen");
        let _ = std::fs::remove_file(&path);
        for i in 0..6 {
            // Fresh handle per append: the lazy scan must find prior records.
            TimeSeriesFile::open(&path, 4)
                .append(&record(i))
                .expect("append");
        }
        let loaded = TimeSeriesFile::open(&path, 4).load().expect("load");
        std::fs::remove_file(&path).ok();
        assert!(loaded.records.len() <= 5);
        assert_eq!(
            loaded.records.last().expect("nonempty").ts_unix_ms,
            record(5).ts_unix_ms
        );
    }

    #[test]
    fn missing_file_is_empty_series() {
        let ts = TimeSeriesFile::open(temp("missing-never-created"), 8);
        let loaded = ts.load().expect("load");
        assert!(loaded.records.is_empty());
        assert_eq!(loaded.skipped_records, 0);
    }
}
