//! The durable snapshot format.
//!
//! A snapshot file is a header followed by independent, individually
//! checksummed records:
//!
//! ```text
//!   magic    "THISTLAS"                 8 bytes
//!   version  u32 le                     format revision (currently 2)
//!   flags    u32 le                     reserved, must be 0
//!   record*  [len u32][crc32 u32][payload: len bytes]
//! ```
//!
//! The first payload byte is the record kind: `1` = one cache entry
//! (canonical query + design point), `2` = one Pareto frontier. Unknown
//! kinds are skipped, so older readers tolerate newer writers within a
//! version.
//!
//! Records are independent on purpose: a torn write or a flipped bit costs
//! exactly the damaged record, not the file. [`AtlasSnapshot::load`] skips
//! records whose CRC or decode fails and reports how many were lost;
//! [`AtlasSnapshot::save`] writes to a sibling temporary file and renames it
//! into place, so a crash mid-checkpoint leaves the previous snapshot
//! intact.
//!
//! Cache entries appear in least-recently-used-first order, so replaying
//! them through an LRU insert reconstructs the pre-shutdown recency chain.

use crate::codec::{crc32, ByteReader, ByteWriter, CodecError};
use crate::pareto::{ParetoFrontier, ParetoPoint};
use std::io::{self, Read, Write};
use std::path::Path;
use thistle::{
    CanonicalLayer, CanonicalMode, CanonicalQuery, DesignPoint, FailureLedger, SolveReport,
    SolverFingerprint, FINGERPRINT_WORDS,
};
use thistle_arch::ArchConfig;
use thistle_expr::ArenaStats;
use thistle_model::{Dim, Objective};
use timeloop_lite::model::LevelStats;
use timeloop_lite::{EvalResult, Mapping};

/// File magic: "THISTLAS".
pub const MAGIC: [u8; 8] = *b"THISTLAS";
/// Current format revision. Bumped to 2 when the solve report gained the
/// batched-sweep fields (`batch_classes`/`batch_members`); v1 snapshots are
/// rejected at load and the atlas re-warms from scratch.
pub const VERSION: u32 = 2;

const KIND_ENTRY: u8 = 1;
const KIND_FRONTIER: u8 = 2;

/// A record larger than this cannot be legitimate; treat the framing as
/// garbled rather than attempting the allocation.
const MAX_RECORD: u32 = 64 << 20;

/// Everything the atlas persists across restarts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AtlasSnapshot {
    /// Solved design points keyed by canonical query, least recently used
    /// first.
    pub entries: Vec<(CanonicalQuery, DesignPoint)>,
    /// Precomputed Pareto frontiers, one per workload family.
    pub frontiers: Vec<ParetoFrontier>,
}

/// Outcome of a tolerant load.
#[derive(Debug)]
pub struct LoadResult {
    /// The surviving records.
    pub snapshot: AtlasSnapshot,
    /// Records dropped for CRC mismatch, truncation, or decode failure.
    pub skipped_records: u64,
}

impl AtlasSnapshot {
    /// Serializes and atomically replaces `path`: the bytes land in a
    /// sibling temporary file which is then renamed over the target, so
    /// readers only ever observe a complete snapshot.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from create/write/sync/rename.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        for (query, point) in &self.entries {
            let mut w = ByteWriter::new();
            w.put_u8(KIND_ENTRY);
            encode_query(&mut w, query);
            encode_design_point(&mut w, point);
            append_record(&mut bytes, w.into_bytes());
        }
        for frontier in &self.frontiers {
            let mut w = ByteWriter::new();
            w.put_u8(KIND_FRONTIER);
            encode_frontier(&mut w, frontier);
            append_record(&mut bytes, w.into_bytes());
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Loads `path`, skipping damaged records. Bad framing (a length that
    /// runs past the file or exceeds the record cap) ends the scan, since
    /// nothing after it can be trusted; everything decoded up to that point
    /// is still returned.
    ///
    /// # Errors
    ///
    /// Returns an error only when the file cannot be read at all or its
    /// header (magic/version) is wrong — a snapshot from a different format
    /// revision must not be silently half-loaded.
    pub fn load(path: &Path) -> io::Result<LoadResult> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < 16 || bytes[..8] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an atlas snapshot (bad magic)",
            ));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported atlas version {version} (want {VERSION})"),
            ));
        }
        let mut snapshot = AtlasSnapshot::default();
        let mut skipped = 0u64;
        let mut pos = 16usize;
        while pos < bytes.len() {
            if bytes.len() - pos < 8 {
                // Torn tail from a crash mid-append.
                skipped += 1;
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            pos += 8;
            if len > MAX_RECORD || bytes.len() - pos < len as usize {
                skipped += 1;
                break;
            }
            let payload = &bytes[pos..pos + len as usize];
            pos += len as usize;
            if crc32(payload) != crc {
                skipped += 1;
                continue;
            }
            if decode_record(payload, &mut snapshot).is_err() {
                skipped += 1;
            }
        }
        Ok(LoadResult {
            snapshot,
            skipped_records: skipped,
        })
    }
}

fn append_record(out: &mut Vec<u8>, payload: Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

fn decode_record(payload: &[u8], snapshot: &mut AtlasSnapshot) -> Result<(), CodecError> {
    let mut r = ByteReader::new(payload);
    match r.get_u8()? {
        KIND_ENTRY => {
            let query = decode_query(&mut r)?;
            let point = decode_design_point(&mut r)?;
            snapshot.entries.push((query, point));
        }
        KIND_FRONTIER => {
            let frontier = decode_frontier(&mut r)?;
            snapshot.frontiers.push(frontier);
        }
        // Unknown kind within a known version: a newer writer's record;
        // ignore it rather than dropping the whole file.
        _ => {}
    }
    Ok(())
}

fn encode_objective(w: &mut ByteWriter, o: Objective) {
    w.put_u8(match o {
        Objective::Energy => 0,
        Objective::Delay => 1,
        Objective::EnergyDelayProduct => 2,
    });
}

fn decode_objective(r: &mut ByteReader) -> Result<Objective, CodecError> {
    match r.get_u8()? {
        0 => Ok(Objective::Energy),
        1 => Ok(Objective::Delay),
        2 => Ok(Objective::EnergyDelayProduct),
        v => Err(CodecError::BadDiscriminant("objective", u64::from(v))),
    }
}

fn encode_query(w: &mut ByteWriter, q: &CanonicalQuery) {
    let l = &q.layer;
    for v in [
        l.batch,
        l.out_channels,
        l.in_channels,
        l.in_h,
        l.in_w,
        l.kernel_h,
        l.kernel_w,
        l.stride,
        l.dilation,
    ] {
        w.put_u64(v);
    }
    encode_objective(w, q.objective);
    match &q.mode {
        CanonicalMode::Fixed {
            pe_count,
            regs_per_pe,
            sram_words,
            word_bits,
        } => {
            w.put_u8(0);
            w.put_u64(*pe_count);
            w.put_u64(*regs_per_pe);
            w.put_u64(*sram_words);
            w.put_u32(*word_bits);
        }
        CanonicalMode::CoDesign {
            area_budget_bits,
            regs_range_bits,
            sram_range_bits,
            pe_range_bits,
        } => {
            w.put_u8(1);
            w.put_u64(*area_budget_bits);
            for (lo, hi) in [regs_range_bits, sram_range_bits, pe_range_bits] {
                w.put_u64(*lo);
                w.put_u64(*hi);
            }
        }
    }
    w.put_u64_slice(&q.solver.encode_words());
}

fn decode_query(r: &mut ByteReader) -> Result<CanonicalQuery, CodecError> {
    let mut l = [0u64; 9];
    for v in &mut l {
        *v = r.get_u64()?;
    }
    let layer = CanonicalLayer {
        batch: l[0],
        out_channels: l[1],
        in_channels: l[2],
        in_h: l[3],
        in_w: l[4],
        kernel_h: l[5],
        kernel_w: l[6],
        stride: l[7],
        dilation: l[8],
    };
    let objective = decode_objective(r)?;
    let mode = match r.get_u8()? {
        0 => CanonicalMode::Fixed {
            pe_count: r.get_u64()?,
            regs_per_pe: r.get_u64()?,
            sram_words: r.get_u64()?,
            word_bits: r.get_u32()?,
        },
        1 => {
            let area_budget_bits = r.get_u64()?;
            let mut ranges = [(0u64, 0u64); 3];
            for range in &mut ranges {
                *range = (r.get_u64()?, r.get_u64()?);
            }
            CanonicalMode::CoDesign {
                area_budget_bits,
                regs_range_bits: ranges[0],
                sram_range_bits: ranges[1],
                pe_range_bits: ranges[2],
            }
        }
        v => return Err(CodecError::BadDiscriminant("arch mode", u64::from(v))),
    };
    let words = r.get_u64_vec()?;
    let words: [u64; FINGERPRINT_WORDS] = words
        .try_into()
        .map_err(|_| CodecError::BadLength("solver fingerprint", 0))?;
    let solver = SolverFingerprint::decode_words(&words)
        .ok_or(CodecError::BadDiscriminant("solver fingerprint", 0))?;
    Ok(CanonicalQuery {
        layer,
        objective,
        mode,
        solver,
    })
}

fn encode_mapping(w: &mut ByteWriter, m: &Mapping) {
    w.put_u64_slice(&m.register_factors);
    w.put_u64_slice(&m.pe_temporal_factors);
    w.put_usize_slice(&m.pe_temporal_perm);
    w.put_u64_slice(&m.spatial_factors);
    w.put_u64_slice(&m.outer_factors);
    w.put_usize_slice(&m.outer_perm);
}

fn decode_mapping(r: &mut ByteReader) -> Result<Mapping, CodecError> {
    Ok(Mapping {
        register_factors: r.get_u64_vec()?,
        pe_temporal_factors: r.get_u64_vec()?,
        pe_temporal_perm: r.get_usize_vec()?,
        spatial_factors: r.get_u64_vec()?,
        outer_factors: r.get_u64_vec()?,
        outer_perm: r.get_usize_vec()?,
    })
}

fn encode_eval(w: &mut ByteWriter, e: &EvalResult) {
    w.put_f64_bits(e.energy_pj);
    w.put_f64_bits(e.cycles);
    w.put_u64(e.macs);
    w.put_f64_bits(e.pj_per_mac);
    w.put_f64_bits(e.ipc);
    w.put_u64(e.pe_used);
    w.put_f64_bits(e.utilization);
    w.put_u32(e.levels.len() as u32);
    for level in &e.levels {
        w.put_str(&level.name);
        w.put_f64_bits(level.reads);
        w.put_f64_bits(level.writes);
        w.put_f64_bits(level.energy_pj);
    }
}

fn decode_eval(r: &mut ByteReader) -> Result<EvalResult, CodecError> {
    let energy_pj = r.get_f64_bits()?;
    let cycles = r.get_f64_bits()?;
    let macs = r.get_u64()?;
    let pj_per_mac = r.get_f64_bits()?;
    let ipc = r.get_f64_bits()?;
    let pe_used = r.get_u64()?;
    let utilization = r.get_f64_bits()?;
    let n = r.get_u32()?;
    if n > 16 {
        return Err(CodecError::BadLength("eval levels", u64::from(n)));
    }
    let mut levels = Vec::with_capacity(n as usize);
    for _ in 0..n {
        levels.push(LevelStats {
            name: r.get_str()?,
            reads: r.get_f64_bits()?,
            writes: r.get_f64_bits()?,
            energy_pj: r.get_f64_bits()?,
        });
    }
    Ok(EvalResult {
        energy_pj,
        cycles,
        macs,
        pj_per_mac,
        ipc,
        pe_used,
        utilization,
        levels,
    })
}

fn encode_ledger(w: &mut ByteWriter, l: &FailureLedger) {
    for v in [
        l.generation_failures,
        l.infeasible,
        l.numerical,
        l.invalid,
        l.cancelled,
        l.solver_panics,
        l.integerize_panics,
        l.recovered,
        l.degraded_solves,
        l.stalled_solves,
    ] {
        w.put_u64(v);
    }
}

fn decode_ledger(r: &mut ByteReader) -> Result<FailureLedger, CodecError> {
    let mut v = [0u64; 10];
    for slot in &mut v {
        *slot = r.get_u64()?;
    }
    Ok(FailureLedger {
        generation_failures: v[0],
        infeasible: v[1],
        numerical: v[2],
        invalid: v[3],
        cancelled: v[4],
        solver_panics: v[5],
        integerize_panics: v[6],
        recovered: v[7],
        degraded_solves: v[8],
        stalled_solves: v[9],
    })
}

fn encode_report(w: &mut ByteWriter, rep: &SolveReport) {
    w.put_str(&rep.workload);
    w.put_str(&rep.status);
    w.put_usize(rep.perm_pair);
    w.put_usize(rep.newton_iterations);
    w.put_u32_slice(&rep.newton_per_center);
    w.put_f64_slice(&rep.gap_trajectory);
    w.put_u32(rep.recovery_attempts);
    match &rep.recovered_by {
        Some(s) => {
            w.put_bool(true);
            w.put_str(s);
        }
        None => w.put_bool(false),
    }
    w.put_u32(rep.condensation_rounds);
    w.put_u64(rep.prefiltered);
    w.put_u64(rep.rejected_infeasible);
    w.put_u64(rep.rejected_utilization);
    match &rep.arena {
        Some(a) => {
            w.put_bool(true);
            for v in [
                a.intern_hits,
                a.intern_misses,
                a.mul_hits,
                a.mul_misses,
                a.subst_hits,
                a.subst_misses,
            ] {
                w.put_u64(v);
            }
        }
        None => w.put_bool(false),
    }
    w.put_bool(rep.warm_started);
    w.put_i64(rep.warm_newton_saved);
    w.put_u64(rep.rows_reused);
    w.put_u64(rep.rows_relowered);
    w.put_u32(rep.batch_classes);
    w.put_u32(rep.batch_members);
}

fn decode_report(r: &mut ByteReader) -> Result<SolveReport, CodecError> {
    let workload = r.get_str()?;
    let status = r.get_str()?;
    let perm_pair = r.get_usize()?;
    let newton_iterations = r.get_usize()?;
    let newton_per_center = r.get_u32_vec()?;
    let gap_trajectory = r.get_f64_vec()?;
    let recovery_attempts = r.get_u32()?;
    let recovered_by = if r.get_bool()? {
        Some(r.get_str()?)
    } else {
        None
    };
    let condensation_rounds = r.get_u32()?;
    let prefiltered = r.get_u64()?;
    let rejected_infeasible = r.get_u64()?;
    let rejected_utilization = r.get_u64()?;
    let arena = if r.get_bool()? {
        let mut v = [0u64; 6];
        for slot in &mut v {
            *slot = r.get_u64()?;
        }
        Some(ArenaStats {
            intern_hits: v[0],
            intern_misses: v[1],
            mul_hits: v[2],
            mul_misses: v[3],
            subst_hits: v[4],
            subst_misses: v[5],
        })
    } else {
        None
    };
    Ok(SolveReport {
        workload,
        status,
        perm_pair,
        newton_iterations,
        newton_per_center,
        gap_trajectory,
        recovery_attempts,
        recovered_by,
        condensation_rounds,
        prefiltered,
        rejected_infeasible,
        rejected_utilization,
        arena,
        warm_started: r.get_bool()?,
        warm_newton_saved: r.get_i64()?,
        rows_reused: r.get_u64()?,
        rows_relowered: r.get_u64()?,
        batch_classes: r.get_u32()?,
        batch_members: r.get_u32()?,
    })
}

fn encode_design_point(w: &mut ByteWriter, p: &DesignPoint) {
    w.put_str(&p.workload_name);
    w.put_u64(p.arch.pe_count);
    w.put_u64(p.arch.regs_per_pe);
    w.put_u64(p.arch.sram_words);
    w.put_u32(p.arch.word_bits);
    encode_mapping(w, &p.mapping);
    encode_eval(w, &p.eval);
    w.put_f64_bits(p.relaxed_objective);
    w.put_u32(p.relaxed_point.values().len() as u32);
    for &v in p.relaxed_point.values() {
        w.put_f64_bits(v);
    }
    w.put_usize_slice(&p.perm1.iter().map(|d| d.index()).collect::<Vec<_>>());
    w.put_usize_slice(&p.perm3.iter().map(|d| d.index()).collect::<Vec<_>>());
    w.put_usize(p.perm_pair);
    w.put_usize(p.gp_solves);
    w.put_usize(p.candidates_evaluated);
    w.put_bool(p.degraded);
    encode_ledger(w, &p.ledger);
    encode_report(w, &p.report);
}

fn decode_design_point(r: &mut ByteReader) -> Result<DesignPoint, CodecError> {
    let workload_name = r.get_str()?;
    let arch = ArchConfig {
        pe_count: r.get_u64()?,
        regs_per_pe: r.get_u64()?,
        sram_words: r.get_u64()?,
        word_bits: r.get_u32()?,
    };
    let mapping = decode_mapping(r)?;
    let eval = decode_eval(r)?;
    let relaxed_objective = r.get_f64_bits()?;
    let n_relaxed = r.get_u32()?;
    if n_relaxed > 65_536 {
        return Err(CodecError::BadLength("relaxed point", u64::from(n_relaxed)));
    }
    let mut relaxed_values = Vec::with_capacity(n_relaxed as usize);
    for _ in 0..n_relaxed {
        relaxed_values.push(r.get_f64_bits()?);
    }
    let relaxed_point = thistle_expr::Assignment::from_values(relaxed_values);
    let perm1 = r.get_usize_vec()?.into_iter().map(Dim).collect();
    let perm3 = r.get_usize_vec()?.into_iter().map(Dim).collect();
    Ok(DesignPoint {
        workload_name,
        arch,
        mapping,
        eval,
        relaxed_objective,
        relaxed_point,
        perm1,
        perm3,
        perm_pair: r.get_usize()?,
        gp_solves: r.get_usize()?,
        candidates_evaluated: r.get_usize()?,
        degraded: r.get_bool()?,
        ledger: decode_ledger(r)?,
        report: decode_report(r)?,
    })
}

fn encode_frontier(w: &mut ByteWriter, f: &ParetoFrontier) {
    w.put_str(&f.workload);
    w.put_u32(f.points.len() as u32);
    for p in &f.points {
        w.put_f64_bits(p.area_um2);
        w.put_f64_bits(p.energy_pj);
        w.put_f64_bits(p.cycles);
        w.put_u64(p.pe_count);
        w.put_u64(p.regs_per_pe);
        w.put_u64(p.sram_words);
        w.put_str(&p.objective);
    }
}

fn decode_frontier(r: &mut ByteReader) -> Result<ParetoFrontier, CodecError> {
    let workload = r.get_str()?;
    let n = r.get_u32()?;
    if n > 4096 {
        return Err(CodecError::BadLength("frontier points", u64::from(n)));
    }
    let mut points = Vec::with_capacity(n as usize);
    for _ in 0..n {
        points.push(ParetoPoint {
            area_um2: r.get_f64_bits()?,
            energy_pj: r.get_f64_bits()?,
            cycles: r.get_f64_bits()?,
            pe_count: r.get_u64()?,
            regs_per_pe: r.get_u64()?,
            sram_words: r.get_u64()?,
            objective: r.get_str()?,
        });
    }
    Ok(ParetoFrontier { workload, points })
}
