//! Pareto-frontier precompute over the co-design space.
//!
//! For one workload family the paper's GP formulation makes the
//! area/energy/delay trade surface cheap to sample: each sample is one
//! co-design solve under a scaled area budget and one of the three
//! objective scalarizations (energy, delay, EDP). The nondominated subset
//! of those samples is the frontier the service stores in the atlas and
//! serves at `GET /pareto`.

use thistle::{Deadline, DesignPoint, Optimizer};
use thistle_arch::ArchConfig;
use thistle_model::{ArchMode, CoDesignSpec, ConvLayer, Objective};

/// One sampled design on the (area, energy, delay) trade surface.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Chip area of the integerized architecture, μm².
    pub area_um2: f64,
    /// Total energy, pJ.
    pub energy_pj: f64,
    /// Execution cycles.
    pub cycles: f64,
    /// Architecture: number of PEs.
    pub pe_count: u64,
    /// Architecture: registers per PE.
    pub regs_per_pe: u64,
    /// Architecture: SRAM words.
    pub sram_words: u64,
    /// Scalarization that produced the sample (`energy`, `delay`, `edp`).
    pub objective: String,
}

/// The nondominated samples for one workload family.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParetoFrontier {
    /// Workload name the frontier belongs to.
    pub workload: String,
    /// Nondominated points, sorted by ascending area.
    pub points: Vec<ParetoPoint>,
}

/// Area-budget fractions of the Eyeriss baseline swept by default. Chosen
/// to bracket the baseline from half to double the area with a point on
/// the baseline itself.
pub const DEFAULT_BUDGET_FRACTIONS: [f64; 4] = [0.5, 0.75, 1.0, 2.0];

/// Keeps the points not dominated in (area, energy, cycles): a point is
/// dropped when another is no worse on all three axes and strictly better
/// on at least one. Output is sorted by ascending area (ties by energy)
/// for stable rendering and serialization.
pub fn nondominated(mut points: Vec<ParetoPoint>) -> Vec<ParetoPoint> {
    let dominates = |a: &ParetoPoint, b: &ParetoPoint| {
        a.area_um2 <= b.area_um2
            && a.energy_pj <= b.energy_pj
            && a.cycles <= b.cycles
            && (a.area_um2 < b.area_um2 || a.energy_pj < b.energy_pj || a.cycles < b.cycles)
    };
    let keep: Vec<bool> = points
        .iter()
        .map(|p| !points.iter().any(|q| dominates(q, p)))
        .collect();
    let mut out: Vec<ParetoPoint> = points
        .drain(..)
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect();
    out.sort_by(|a, b| {
        a.area_um2
            .total_cmp(&b.area_um2)
            .then(a.energy_pj.total_cmp(&b.energy_pj))
    });
    out.dedup();
    out
}

fn objective_tag(o: Objective) -> &'static str {
    match o {
        Objective::Energy => "energy",
        Objective::Delay => "delay",
        Objective::EnergyDelayProduct => "edp",
    }
}

/// Samples the co-design trade surface for `layer`: one solve per
/// (budget fraction × objective), budgets scaled from the Eyeriss-area
/// baseline, then the nondominated filter. Failed or cancelled solves are
/// skipped — a frontier is best-effort by construction. Passing the
/// cancelled `deadline` stops the sweep early and returns whatever was
/// sampled.
pub fn compute_frontier(
    optimizer: &Optimizer,
    layer: &ConvLayer,
    budget_fractions: &[f64],
    deadline: &Deadline,
) -> ParetoFrontier {
    let tech = optimizer.tech().clone();
    let base = CoDesignSpec::same_area_as(&ArchConfig::eyeriss(), &tech);
    let ctx = thistle_obs::TraceCtx::disabled();
    let mut samples = Vec::new();
    'sweep: for &fraction in budget_fractions {
        for objective in [
            Objective::Energy,
            Objective::Delay,
            Objective::EnergyDelayProduct,
        ] {
            if deadline.expired() {
                break 'sweep;
            }
            let spec = CoDesignSpec {
                area_budget_um2: base.area_budget_um2 * fraction,
                ..base.clone()
            };
            let mode = ArchMode::CoDesign(spec);
            if let Ok(point) =
                optimizer.optimize_layer_deadline(layer, objective, &mode, deadline, &ctx)
            {
                samples.push(sample_of(&point, objective, &tech));
            }
        }
    }
    ParetoFrontier {
        workload: layer.name.clone(),
        points: nondominated(samples),
    }
}

fn sample_of(
    point: &DesignPoint,
    objective: Objective,
    tech: &thistle_arch::TechnologyParams,
) -> ParetoPoint {
    ParetoPoint {
        area_um2: point.arch.area_um2(tech),
        energy_pj: point.eval.energy_pj,
        cycles: point.eval.cycles,
        pe_count: point.arch.pe_count,
        regs_per_pe: point.arch.regs_per_pe,
        sram_words: point.arch.sram_words,
        objective: objective_tag(objective).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(area: f64, energy: f64, cycles: f64) -> ParetoPoint {
        ParetoPoint {
            area_um2: area,
            energy_pj: energy,
            cycles,
            pe_count: 1,
            regs_per_pe: 1,
            sram_words: 1,
            objective: "energy".into(),
        }
    }

    #[test]
    fn dominated_points_are_dropped_and_output_is_area_sorted() {
        let points = vec![
            pt(2.0, 5.0, 5.0),
            pt(1.0, 10.0, 10.0),
            // Dominated by the first point on every axis.
            pt(3.0, 6.0, 6.0),
            // Incomparable: cheapest energy, worst area.
            pt(4.0, 1.0, 9.0),
        ];
        let front = nondominated(points);
        let areas: Vec<f64> = front.iter().map(|p| p.area_um2).collect();
        assert_eq!(areas, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn duplicate_points_survive_once() {
        let front = nondominated(vec![pt(1.0, 1.0, 1.0), pt(1.0, 1.0, 1.0)]);
        assert_eq!(front.len(), 1);
    }
}
