//! Time-series ring-file corruption tolerance: damage must cost exactly the
//! damaged records, never the whole metrics history — and bad framing must
//! stop the scan instead of feeding garbage lengths to the allocator.

use std::path::PathBuf;
use thistle_atlas::{TimeSeriesFile, TimeSeriesRecord, TS_MAGIC};
use thistle_obs::registry::{CounterSample, GaugeSample};
use thistle_obs::RegistrySnapshot;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "thistle-ts-corrupt-{}-{tag}.bin",
        std::process::id()
    ))
}

fn record(i: u64) -> TimeSeriesRecord {
    TimeSeriesRecord {
        ts_unix_ms: 1_750_000_000_000 + i * 1_000,
        fingerprint_words: vec![0xfeed + i; 21],
        build: "thistle-serve 0.1.0".into(),
        snapshot: RegistrySnapshot {
            counters: vec![CounterSample {
                name: "requests_total".into(),
                label: None,
                value: 100 + i,
            }],
            gauges: vec![GaugeSample {
                name: "cache_len".into(),
                value: i,
            }],
            histograms: vec![],
        },
    }
}

fn series_with(n: u64, tag: &str) -> (TimeSeriesFile, PathBuf) {
    let path = temp_path(tag);
    let _ = std::fs::remove_file(&path);
    let ts = TimeSeriesFile::open(&path, 1_000);
    for i in 0..n {
        ts.append(&record(i)).expect("append");
    }
    (ts, path)
}

#[test]
fn flipped_bit_skips_one_record_and_keeps_the_rest() {
    let (ts, path) = series_with(3, "flip");
    let mut bytes = std::fs::read(&path).expect("read");
    // Header is 16 bytes; each record is [len][crc][payload]. Flip a byte in
    // the first record's payload.
    assert_eq!(&bytes[..8], &TS_MAGIC);
    let first_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    assert!(first_len > 4);
    bytes[16 + 8 + first_len / 2] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite");
    let loaded = ts.load().expect("load survives corruption");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.skipped_records, 1);
    assert_eq!(loaded.records.len(), 2);
    // The two survivors are the undamaged records, in order.
    assert_eq!(loaded.records[0].ts_unix_ms, record(1).ts_unix_ms);
    assert_eq!(loaded.records[1], record(2));
}

#[test]
fn torn_tail_from_crash_mid_append_is_dropped() {
    let (ts, path) = series_with(3, "torn");
    let bytes = std::fs::read(&path).expect("read");
    // Chop the file mid-way through the last record.
    std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("rewrite");
    let loaded = ts.load().expect("load survives torn tail");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.skipped_records, 1);
    assert_eq!(loaded.records.len(), 2);
}

#[test]
fn hostile_length_prefix_stops_the_scan() {
    let (ts, path) = series_with(2, "hostile-len");
    let mut bytes = std::fs::read(&path).expect("read");
    // Overwrite the first record's length with an absurd value; nothing
    // after an unframeable record can be trusted.
    bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).expect("rewrite");
    let loaded = ts.load().expect("load survives bad framing");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.records.len(), 0);
    assert_eq!(loaded.skipped_records, 1);
}

#[test]
fn wrong_magic_is_a_hard_error() {
    let (ts, path) = series_with(1, "magic");
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[0] ^= 0xff;
    std::fs::write(&path, &bytes).expect("rewrite");
    let err = ts.load().expect_err("foreign file must not half-load");
    std::fs::remove_file(&path).ok();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn appends_after_corruption_still_land() {
    let (ts, path) = series_with(2, "append-after");
    let mut bytes = std::fs::read(&path).expect("read");
    let first_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    bytes[16 + 8 + first_len / 2] ^= 0x01;
    std::fs::write(&path, &bytes).expect("rewrite");
    // The writer keeps appending past damaged history; readers skip it.
    ts.append(&record(7)).expect("append after corruption");
    let loaded = ts.load().expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.skipped_records, 1);
    assert_eq!(loaded.records.len(), 2);
    assert_eq!(loaded.records.last().expect("tail"), &record(7));
}
