//! Corruption tolerance: a damaged snapshot must cost exactly the damaged
//! records, never the file — and damaged framing must stop the scan rather
//! than feed garbage lengths to the allocator.

use std::path::PathBuf;
use thistle::{CanonicalQuery, Optimizer};
use thistle_arch::{ArchConfig, TechnologyParams};
use thistle_atlas::{AtlasSnapshot, ParetoFrontier, ParetoPoint};
use thistle_model::{ArchMode, ConvLayer, Objective};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "thistle-atlas-corrupt-{}-{tag}.bin",
        std::process::id()
    ))
}

/// A snapshot with `n` pareto-frontier records (cheap to build, no
/// optimizer run needed beyond the fingerprint).
fn frontier_snapshot(n: usize) -> AtlasSnapshot {
    AtlasSnapshot {
        entries: vec![],
        frontiers: (0..n)
            .map(|i| ParetoFrontier {
                workload: format!("family_{i}"),
                points: vec![ParetoPoint {
                    area_um2: 1.0 + i as f64,
                    energy_pj: 2.0,
                    cycles: 3.0,
                    pe_count: 4,
                    regs_per_pe: 5,
                    sram_words: 6,
                    objective: "energy".into(),
                }],
            })
            .collect(),
    }
}

#[test]
fn flipped_bit_skips_one_record_and_keeps_the_rest() {
    let snapshot = frontier_snapshot(3);
    let path = temp_path("flip");
    snapshot.save(&path).expect("save");
    let mut bytes = std::fs::read(&path).expect("read");
    // Header is 16 bytes, each record is [len][crc][payload]; flip a byte
    // inside the first record's payload.
    let first_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    assert!(first_len > 4);
    bytes[16 + 8 + first_len / 2] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite");
    let loaded = AtlasSnapshot::load(&path).expect("load survives corruption");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.skipped_records, 1);
    assert_eq!(loaded.snapshot.frontiers.len(), 2);
    let names: Vec<&str> = loaded
        .snapshot
        .frontiers
        .iter()
        .map(|f| f.workload.as_str())
        .collect();
    assert_eq!(names, vec!["family_1", "family_2"]);
}

#[test]
fn truncated_tail_keeps_complete_records() {
    let snapshot = frontier_snapshot(3);
    let path = temp_path("trunc");
    snapshot.save(&path).expect("save");
    let bytes = std::fs::read(&path).expect("read");
    // Cut the file mid-way through the last record.
    std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");
    let loaded = AtlasSnapshot::load(&path).expect("load survives truncation");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.skipped_records, 1);
    assert_eq!(loaded.snapshot.frontiers.len(), 2);
}

#[test]
fn garbled_length_stops_the_scan_without_allocating() {
    let snapshot = frontier_snapshot(2);
    let path = temp_path("len");
    snapshot.save(&path).expect("save");
    let mut bytes = std::fs::read(&path).expect("read");
    // Stamp an absurd length over the first record's frame.
    bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).expect("rewrite");
    let loaded = AtlasSnapshot::load(&path).expect("load survives bad framing");
    std::fs::remove_file(&path).ok();
    // Nothing after an untrustworthy frame can be decoded.
    assert_eq!(loaded.skipped_records, 1);
    assert!(loaded.snapshot.frontiers.is_empty());
}

#[test]
fn wrong_magic_and_version_are_hard_errors() {
    let path = temp_path("magic");
    std::fs::write(&path, b"NOTATLAS\x01\x00\x00\x00\x00\x00\x00\x00rest").expect("write");
    assert!(AtlasSnapshot::load(&path).is_err());

    let snapshot = frontier_snapshot(1);
    snapshot.save(&path).expect("save");
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[8] = 99; // future version
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(AtlasSnapshot::load(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn design_entries_coexist_with_frontiers() {
    // One real cache entry (needs an actual solve — keep it tiny).
    let optimizer = Optimizer::new(TechnologyParams::cgo2022_45nm());
    let layer = ConvLayer::new("mix", 1, 8, 8, 8, 8, 3, 3, 1);
    let mode = ArchMode::Fixed(ArchConfig::eyeriss());
    let point = optimizer
        .optimize_layer(&layer, Objective::Energy, &mode)
        .expect("solvable");
    let (query, _) = CanonicalQuery::new(&optimizer, &layer, Objective::Energy, &mode);
    let mut snapshot = frontier_snapshot(1);
    snapshot.entries.push((query.clone(), point.clone()));
    let path = temp_path("mixed");
    snapshot.save(&path).expect("save");
    let loaded = AtlasSnapshot::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.skipped_records, 0);
    assert_eq!(loaded.snapshot.entries.len(), 1);
    assert_eq!(loaded.snapshot.frontiers.len(), 1);
    let (restored_query, restored_point) = &loaded.snapshot.entries[0];
    assert_eq!(restored_query, &query);
    assert_eq!(
        restored_point.eval.energy_pj.to_bits(),
        point.eval.energy_pj.to_bits()
    );
    assert_eq!(restored_point.mapping, point.mapping);
}
