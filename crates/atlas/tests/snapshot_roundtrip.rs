//! Property test: an atlas snapshot round-trips through disk bit-identically
//! — every field of every design point, including degraded flags, ledger
//! counters, and the warm-start report fields. "Bit-identical" is asserted
//! by re-serializing the loaded snapshot and comparing the byte streams,
//! which is strictly stronger than `PartialEq` on floats.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::path::PathBuf;
use thistle::{CanonicalQuery, DesignPoint, FailureLedger, Optimizer, SolveReport};
use thistle_arch::{ArchConfig, TechnologyParams};
use thistle_atlas::{AtlasSnapshot, ParetoFrontier, ParetoPoint};
use thistle_model::{ArchMode, CoDesignSpec, ConvLayer, Dim, Objective};
use timeloop_lite::model::LevelStats;
use timeloop_lite::{EvalResult, Mapping};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("thistle-atlas-{}-{tag}.bin", std::process::id()))
}

fn synth_query(rng: &mut StdRng) -> CanonicalQuery {
    let optimizer = Optimizer::new(TechnologyParams::cgo2022_45nm());
    let layer = ConvLayer::new(
        "prop",
        rng.gen_range(1u64..8),
        1 << rng.gen_range(3u32..8),
        1 << rng.gen_range(3u32..8),
        rng.gen_range(7u64..56),
        rng.gen_range(7u64..56),
        3,
        3,
        rng.gen_range(1u64..3),
    );
    let mode = if rng.gen_bool(0.5) {
        ArchMode::Fixed(ArchConfig::eyeriss())
    } else {
        ArchMode::CoDesign(CoDesignSpec::same_area_as(
            &ArchConfig::eyeriss(),
            optimizer.tech(),
        ))
    };
    let objective = match rng.gen_range(0u32..3) {
        0 => Objective::Energy,
        1 => Objective::Delay,
        _ => Objective::EnergyDelayProduct,
    };
    CanonicalQuery::new(&optimizer, &layer, objective, &mode).0
}

fn synth_point(rng: &mut StdRng) -> DesignPoint {
    let n = 7usize;
    let factors =
        |rng: &mut StdRng| -> Vec<u64> { (0..n).map(|_| 1 << rng.gen_range(0u32..4)).collect() };
    let perm = |rng: &mut StdRng| -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            p.swap(i, rng.gen_range(0..i + 1));
        }
        p
    };
    DesignPoint {
        workload_name: format!("layer_{}", rng.gen_range(0u32..100)),
        arch: ArchConfig::new(
            rng.gen_range(1u64..1024),
            rng.gen_range(1u64..2048),
            rng.gen_range(1024u64..1 << 17),
        ),
        mapping: Mapping {
            register_factors: factors(rng),
            pe_temporal_factors: factors(rng),
            pe_temporal_perm: perm(rng),
            spatial_factors: factors(rng),
            outer_factors: factors(rng),
            outer_perm: perm(rng),
        },
        eval: EvalResult {
            energy_pj: rng.gen_range(0.0..1e9),
            cycles: rng.gen_range(0.0..1e9),
            macs: rng.next_u64() >> 16,
            pj_per_mac: rng.gen_range(0.0..100.0),
            ipc: rng.gen_range(0.0..256.0),
            pe_used: rng.gen_range(1u64..1024),
            utilization: rng.gen_range(0.0..1.0),
            levels: vec![
                LevelStats {
                    name: "regfile".into(),
                    reads: rng.gen_range(0.0..1e12),
                    writes: rng.gen_range(0.0..1e12),
                    energy_pj: rng.gen_range(0.0..1e9),
                },
                LevelStats {
                    name: "sram".into(),
                    reads: rng.gen_range(0.0..1e12),
                    writes: rng.gen_range(0.0..1e12),
                    energy_pj: rng.gen_range(0.0..1e9),
                },
            ],
        },
        relaxed_objective: rng.gen_range(0.0..1e9),
        relaxed_point: thistle_expr::Assignment::from_values(
            (0..rng.gen_range(0usize..24))
                .map(|_| rng.gen_range(1e-3..1e6))
                .collect(),
        ),
        perm1: perm(rng).into_iter().map(Dim).collect(),
        perm3: perm(rng).into_iter().map(Dim).collect(),
        perm_pair: rng.gen_range(0usize..288),
        gp_solves: rng.gen_range(0usize..300),
        candidates_evaluated: rng.gen_range(0usize..5000),
        degraded: rng.gen_bool(0.3),
        ledger: FailureLedger {
            generation_failures: rng.gen_range(0u64..10),
            infeasible: rng.gen_range(0u64..10),
            numerical: rng.gen_range(0u64..10),
            invalid: rng.gen_range(0u64..10),
            cancelled: rng.gen_range(0u64..10),
            solver_panics: rng.gen_range(0u64..10),
            integerize_panics: rng.gen_range(0u64..10),
            recovered: rng.gen_range(0u64..10),
            degraded_solves: rng.gen_range(0u64..10),
            stalled_solves: rng.gen_range(0u64..10),
        },
        report: SolveReport {
            workload: "prop".into(),
            status: if rng.gen_bool(0.5) {
                "optimal".into()
            } else {
                "degraded".into()
            },
            perm_pair: rng.gen_range(0usize..288),
            newton_iterations: rng.gen_range(0usize..500),
            newton_per_center: (0..rng.gen_range(0usize..8))
                .map(|_| rng.gen_range(0u32..80))
                .collect(),
            gap_trajectory: (0..rng.gen_range(0usize..8))
                .map(|_| rng.gen_range(0.0..1.0))
                .collect(),
            recovery_attempts: rng.gen_range(1u32..5),
            recovered_by: rng.gen_bool(0.3).then(|| "TikhonovRidge".to_string()),
            condensation_rounds: rng.gen_range(0u32..4),
            prefiltered: rng.gen_range(0u64..1000),
            rejected_infeasible: rng.gen_range(0u64..1000),
            rejected_utilization: rng.gen_range(0u64..1000),
            arena: None,
            warm_started: rng.gen_bool(0.3),
            warm_newton_saved: rng.gen_range(-50i64..200),
            rows_reused: rng.gen_range(0u64..500),
            rows_relowered: rng.gen_range(0u64..500),
            batch_classes: rng.gen_range(0u32..32),
            batch_members: rng.gen_range(0u32..64),
        },
    }
}

fn synth_snapshot(seed: u64, entries: usize, frontiers: usize) -> AtlasSnapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    AtlasSnapshot {
        entries: (0..entries)
            .map(|_| (synth_query(&mut rng), synth_point(&mut rng)))
            .collect(),
        frontiers: (0..frontiers)
            .map(|f| ParetoFrontier {
                workload: format!("family_{f}"),
                points: (0..rng.gen_range(0usize..6))
                    .map(|_| ParetoPoint {
                        area_um2: rng.gen_range(1e5..1e8),
                        energy_pj: rng.gen_range(1e3..1e9),
                        cycles: rng.gen_range(1e3..1e9),
                        pe_count: rng.gen_range(1u64..1024),
                        regs_per_pe: rng.gen_range(1u64..2048),
                        sram_words: rng.gen_range(1024u64..1 << 17),
                        objective: "energy".into(),
                    })
                    .collect(),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshot_round_trips_bit_identically(
        seed in 0u64..1_000_000,
        entries in 0usize..5,
        frontiers in 0usize..3,
    ) {
        let snapshot = synth_snapshot(seed, entries, frontiers);
        let path = temp_path(&format!("rt-{seed}-{entries}-{frontiers}"));
        snapshot.save(&path).expect("save");
        let loaded = AtlasSnapshot::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded.skipped_records, 0);
        // Structural equality first (clearer failures)...
        prop_assert_eq!(&loaded.snapshot, &snapshot);
        // ...then bit-identity via re-serialization.
        let path2 = temp_path(&format!("rt2-{seed}-{entries}-{frontiers}"));
        loaded.snapshot.save(&path2).expect("re-save");
        let original = {
            let path3 = temp_path(&format!("rt3-{seed}-{entries}-{frontiers}"));
            snapshot.save(&path3).expect("save again");
            let bytes = std::fs::read(&path3).expect("read");
            std::fs::remove_file(&path3).ok();
            bytes
        };
        let reloaded = std::fs::read(&path2).expect("read");
        std::fs::remove_file(&path2).ok();
        prop_assert_eq!(original, reloaded);
    }
}

#[test]
fn degraded_and_ledger_fields_survive() {
    let mut rng = StdRng::seed_from_u64(7);
    let query = synth_query(&mut rng);
    let mut point = synth_point(&mut rng);
    point.degraded = true;
    point.ledger.solver_panics = 3;
    point.ledger.recovered = 2;
    point.report.warm_started = true;
    point.report.warm_newton_saved = -4;
    let snapshot = AtlasSnapshot {
        entries: vec![(query, point.clone())],
        frontiers: vec![],
    };
    let path = temp_path("ledger");
    snapshot.save(&path).expect("save");
    let loaded = AtlasSnapshot::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    let (_, restored) = &loaded.snapshot.entries[0];
    assert!(restored.degraded);
    assert_eq!(restored.ledger, point.ledger);
    assert!(restored.report.warm_started);
    assert_eq!(restored.report.warm_newton_saved, -4);
}
