//! A multithreaded mapping-space explorer in the style of Timeloop Mapper.
//!
//! Each worker thread repeatedly proposes mappings — either a fresh random
//! point (prime factors of every extent dealt to random levels, random loop
//! orders) or a mutation of the best mapping found so far — evaluates them
//! with the analytical model, and keeps the best under the chosen objective.
//! A thread stops after its trial budget, when the *victory condition* fires
//! (too many consecutive proposals without improving on the incumbent), or
//! when the wall-clock limit expires: the same three termination rules
//! Timeloop Mapper exposes.

use crate::arch::ArchSpec;
use crate::mapping::Mapping;
use crate::model::{evaluate, EvalResult};
use crate::problem::ProblemSpec;
use rand::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What the mapper minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchObjective {
    /// Total energy (pJ).
    Energy,
    /// Execution cycles.
    Delay,
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct MapperOptions {
    /// Objective to minimize.
    pub objective: SearchObjective,
    /// Total proposal budget across all threads.
    pub max_trials: usize,
    /// Consecutive non-improving *valid* evaluations before a thread declares
    /// victory and stops.
    pub victory_condition: usize,
    /// Worker threads.
    pub threads: usize,
    /// RNG seed (search is deterministic for a fixed seed and thread count
    /// up to best-tie ordering).
    pub seed: u64,
    /// Optional wall-clock limit.
    pub time_limit: Option<Duration>,
}

impl Default for MapperOptions {
    fn default() -> Self {
        MapperOptions {
            objective: SearchObjective::Energy,
            max_trials: 20_000,
            victory_condition: 2_000,
            threads: 4,
            seed: 0xC60_2022,
            time_limit: None,
        }
    }
}

/// Outcome of a search.
#[derive(Debug, Clone)]
pub struct MapperResult {
    /// Best mapping found and its evaluation, if any proposal was valid.
    pub best: Option<(Mapping, EvalResult)>,
    /// Proposals evaluated (valid or not).
    pub evaluated: usize,
    /// Proposals that passed validation and capacity checks.
    pub valid: usize,
}

/// The search driver.
#[derive(Debug, Clone)]
pub struct Mapper {
    prob: ProblemSpec,
    arch: ArchSpec,
    opts: MapperOptions,
}

impl Mapper {
    /// Creates a mapper for one problem/architecture pair.
    pub fn new(prob: ProblemSpec, arch: ArchSpec, opts: MapperOptions) -> Self {
        Mapper { prob, arch, opts }
    }

    /// Runs the search to completion.
    pub fn search(&self) -> MapperResult {
        let best: Mutex<Option<(f64, Mapping, EvalResult)>> = Mutex::new(None);
        let evaluated = AtomicUsize::new(0);
        let valid = AtomicUsize::new(0);
        let started = Instant::now();
        let per_thread = self.opts.max_trials / self.opts.threads.max(1);

        crossbeam::scope(|scope| {
            for tid in 0..self.opts.threads.max(1) {
                let best = &best;
                let evaluated = &evaluated;
                let valid = &valid;
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(
                        self.opts.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tid as u64 + 1)),
                    );
                    let mut since_improvement = 0usize;
                    for _ in 0..per_thread {
                        if since_improvement >= self.opts.victory_condition {
                            break;
                        }
                        if let Some(limit) = self.opts.time_limit {
                            if started.elapsed() > limit {
                                break;
                            }
                        }
                        let proposal = self.propose(&mut rng, best);
                        evaluated.fetch_add(1, Ordering::Relaxed);
                        let Ok(result) = evaluate(&self.prob, &self.arch, &proposal) else {
                            since_improvement += 1;
                            continue;
                        };
                        valid.fetch_add(1, Ordering::Relaxed);
                        let score = self.score(&result);
                        let mut guard = best.lock().expect("mapper lock");
                        match &*guard {
                            Some((incumbent, _, _)) if *incumbent <= score => {
                                since_improvement += 1;
                            }
                            _ => {
                                *guard = Some((score, proposal, result));
                                since_improvement = 0;
                            }
                        }
                    }
                });
            }
        })
        .expect("mapper threads panicked");

        let best = best
            .into_inner()
            .expect("mapper lock")
            .map(|(_, m, r)| (m, r));
        MapperResult {
            best,
            evaluated: evaluated.into_inner(),
            valid: valid.into_inner(),
        }
    }

    fn score(&self, r: &EvalResult) -> f64 {
        match self.opts.objective {
            SearchObjective::Energy => r.energy_pj,
            SearchObjective::Delay => r.cycles,
        }
    }

    fn propose(
        &self,
        rng: &mut StdRng,
        best: &Mutex<Option<(f64, Mapping, EvalResult)>>,
    ) -> Mapping {
        // Half the proposals mutate the incumbent (local refinement), half
        // restart from a random point (global coverage).
        if rng.gen_bool(0.5) {
            let incumbent = best
                .lock()
                .expect("mapper lock")
                .as_ref()
                .map(|(_, m, _)| m.clone());
            if let Some(m) = incumbent {
                return self.mutate(m, rng);
            }
        }
        self.random_mapping(rng)
    }

    fn random_mapping(&self, rng: &mut StdRng) -> Mapping {
        let n = self.prob.num_dims();
        let mut m = Mapping::untiled(&self.prob);
        for d in 0..n {
            let split = random_split(self.prob.extents[d], rng);
            m.register_factors[d] = split[0];
            m.pe_temporal_factors[d] = split[1];
            m.spatial_factors[d] = split[2];
            m.outer_factors[d] = split[3];
        }
        m.pe_temporal_perm = random_perm(n, rng);
        m.outer_perm = random_perm(n, rng);
        m
    }

    fn mutate(&self, mut m: Mapping, rng: &mut StdRng) -> Mapping {
        match rng.gen_range(0..3) {
            0 => {
                // Move one prime factor of a random dim between two levels.
                let d = rng.gen_range(0..self.prob.num_dims());
                let levels: [&mut Vec<u64>; 4] = [
                    &mut m.register_factors,
                    &mut m.pe_temporal_factors,
                    &mut m.spatial_factors,
                    &mut m.outer_factors,
                ];
                let from = rng.gen_range(0..4);
                let to = (from + rng.gen_range(1..4)) % 4;
                let value = levels[from][d];
                if let Some(p) = smallest_prime_factor(value) {
                    levels[from][d] /= p;
                    levels[to][d] *= p;
                }
            }
            1 => {
                m.pe_temporal_perm.shuffle(rng);
            }
            _ => {
                m.outer_perm.shuffle(rng);
            }
        }
        m
    }
}

fn random_perm(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    p.shuffle(rng);
    p
}

/// Splits `n` into four factors by dealing each prime factor to a random
/// level.
fn random_split(mut n: u64, rng: &mut StdRng) -> [u64; 4] {
    let mut out = [1u64; 4];
    while n > 1 {
        let p = smallest_prime_factor(n).expect("n > 1 has a prime factor");
        out[rng.gen_range(0..4)] *= p;
        n /= p;
    }
    out
}

fn smallest_prime_factor(n: u64) -> Option<u64> {
    if n <= 1 {
        return None;
    }
    let mut p = 2;
    while p * p <= n {
        if n.is_multiple_of(p) {
            return Some(p);
        }
        p += 1;
    }
    Some(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::matmul;

    fn quick_opts(objective: SearchObjective) -> MapperOptions {
        MapperOptions {
            objective,
            max_trials: 4_000,
            victory_condition: 1_500,
            threads: 2,
            seed: 7,
            time_limit: None,
        }
    }

    #[test]
    fn finds_valid_mapping_for_matmul() {
        let prob = matmul(64, 64, 64);
        let mapper = Mapper::new(
            prob.clone(),
            ArchSpec::eyeriss_like(),
            quick_opts(SearchObjective::Energy),
        );
        let result = mapper.search();
        let (m, r) = result.best.expect("search must find a valid mapping");
        m.validate(&prob).unwrap();
        assert!(result.valid > 0);
        assert!(r.pj_per_mac > 2.2, "must include at least MAC energy");
        // With 512-word register files, MAC+register floor is ~20.8 pJ/MAC.
        assert!(r.pj_per_mac < 200.0, "search should find something sane");
    }

    #[test]
    fn delay_objective_prefers_parallelism() {
        let prob = matmul(64, 64, 64);
        let energy = Mapper::new(
            prob.clone(),
            ArchSpec::eyeriss_like(),
            quick_opts(SearchObjective::Energy),
        )
        .search()
        .best
        .unwrap()
        .1;
        let delay = Mapper::new(
            prob,
            ArchSpec::eyeriss_like(),
            quick_opts(SearchObjective::Delay),
        )
        .search()
        .best
        .unwrap()
        .1;
        assert!(delay.cycles <= energy.cycles);
        assert!(delay.ipc >= 1.0);
    }

    #[test]
    fn search_is_deterministic_for_fixed_seed() {
        let prob = matmul(32, 32, 32);
        let opts = MapperOptions {
            threads: 1,
            max_trials: 1_000,
            ..quick_opts(SearchObjective::Energy)
        };
        let a = Mapper::new(prob.clone(), ArchSpec::eyeriss_like(), opts.clone()).search();
        let b = Mapper::new(prob, ArchSpec::eyeriss_like(), opts).search();
        let (ma, ra) = a.best.unwrap();
        let (mb, rb) = b.best.unwrap();
        assert_eq!(ma, mb);
        assert_eq!(ra.energy_pj, rb.energy_pj);
    }

    #[test]
    fn respects_trial_budget() {
        let prob = matmul(16, 16, 16);
        let opts = MapperOptions {
            max_trials: 100,
            victory_condition: 1_000_000,
            threads: 1,
            ..quick_opts(SearchObjective::Energy)
        };
        let result = Mapper::new(prob, ArchSpec::eyeriss_like(), opts).search();
        assert!(result.evaluated <= 100);
    }
}
