//! A GAMMA-style genetic-algorithm mapping search.
//!
//! GAMMA (Kao & Krishna, ICCAD 2020 — reference 13 of the paper) drives
//! dataflow exploration with a genetic algorithm over mapping genomes. This
//! module provides the equivalent baseline on the three-level template:
//!
//! * **genome** — a [`Mapping`]: per-dimension level factors plus the two
//!   temporal loop orders;
//! * **crossover** — uniform per-dimension: a child takes each dimension's
//!   whole factor column from one parent (keeping per-dimension products
//!   valid by construction) and each permutation from one parent;
//! * **mutation** — move one prime factor of a random dimension between two
//!   levels, or reshuffle a loop order;
//! * **selection** — tournament of 3, with elitism.
//!
//! Invalid or over-capacity genomes receive infinite fitness and die out.

use crate::arch::ArchSpec;
use crate::mapper::SearchObjective;
use crate::mapping::Mapping;
use crate::model::{evaluate, EvalResult};
use crate::problem::ProblemSpec;
use rand::prelude::*;

/// Configuration of the genetic search.
#[derive(Debug, Clone)]
pub struct GammaOptions {
    /// Objective to minimize.
    pub objective: SearchObjective,
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-child probability of an extra mutation.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elites: usize,
    /// RNG seed (deterministic search for a fixed seed).
    pub seed: u64,
}

impl Default for GammaOptions {
    fn default() -> Self {
        GammaOptions {
            objective: SearchObjective::Energy,
            population: 60,
            generations: 120,
            mutation_rate: 0.6,
            elites: 4,
            seed: 0x6A44_4441,
        }
    }
}

/// Outcome of a genetic search.
#[derive(Debug, Clone)]
pub struct GammaResult {
    /// Best mapping found and its evaluation, if any genome was valid.
    pub best: Option<(Mapping, EvalResult)>,
    /// Total fitness evaluations.
    pub evaluated: usize,
    /// Generation in which the best individual was found.
    pub best_generation: usize,
}

/// The genetic-algorithm mapper.
#[derive(Debug, Clone)]
pub struct GeneticMapper {
    prob: ProblemSpec,
    arch: ArchSpec,
    opts: GammaOptions,
}

impl GeneticMapper {
    /// Creates a genetic mapper for one problem/architecture pair.
    pub fn new(prob: ProblemSpec, arch: ArchSpec, opts: GammaOptions) -> Self {
        GeneticMapper { prob, arch, opts }
    }

    /// Runs the evolutionary search to completion.
    pub fn search(&self) -> GammaResult {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        let popn = self.opts.population.max(2);
        let mut evaluated = 0usize;

        let mut population: Vec<(f64, Mapping)> = (0..popn)
            .map(|_| {
                let m = self.random_genome(&mut rng);
                (self.fitness(&m, &mut evaluated), m)
            })
            .collect();
        let mut best: Option<(f64, Mapping, EvalResult, usize)> = None;

        // One extra pass so the children bred in the final generation are
        // still scanned for a new incumbent.
        for generation in 0..=self.opts.generations {
            population.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("fitness is not NaN"));
            if let Some((score, genome)) = population.first() {
                if score.is_finite()
                    && best
                        .as_ref()
                        .is_none_or(|(incumbent, _, _, _)| score < incumbent)
                {
                    let eval = evaluate(&self.prob, &self.arch, genome)
                        .expect("finite fitness implies valid genome");
                    best = Some((*score, genome.clone(), eval, generation));
                }
            }
            if generation == self.opts.generations {
                break;
            }

            let mut next: Vec<(f64, Mapping)> =
                population.iter().take(self.opts.elites).cloned().collect();
            while next.len() < popn {
                let a = self.tournament(&population, &mut rng);
                let b = self.tournament(&population, &mut rng);
                let mut child = self.crossover(a, b, &mut rng);
                if rng.gen_bool(self.opts.mutation_rate) {
                    child = self.mutate(child, &mut rng);
                }
                let f = self.fitness(&child, &mut evaluated);
                next.push((f, child));
            }
            population = next;
        }

        GammaResult {
            best: best.as_ref().map(|(_, m, e, _)| (m.clone(), e.clone())),
            evaluated,
            best_generation: best.map_or(0, |(_, _, _, g)| g),
        }
    }

    fn fitness(&self, m: &Mapping, evaluated: &mut usize) -> f64 {
        *evaluated += 1;
        match evaluate(&self.prob, &self.arch, m) {
            Ok(eval) => match self.opts.objective {
                SearchObjective::Energy => eval.energy_pj,
                SearchObjective::Delay => eval.cycles,
            },
            Err(_) => f64::INFINITY,
        }
    }

    fn tournament<'p>(&self, population: &'p [(f64, Mapping)], rng: &mut StdRng) -> &'p Mapping {
        let pick = |rng: &mut StdRng| &population[rng.gen_range(0..population.len())];
        let mut winner = pick(rng);
        for _ in 0..2 {
            let challenger = pick(rng);
            if challenger.0 < winner.0 {
                winner = challenger;
            }
        }
        &winner.1
    }

    /// Uniform per-dimension crossover: per-dimension factor columns come
    /// whole from one parent (so products stay equal to extents), and each
    /// permutation comes from one parent.
    fn crossover(&self, a: &Mapping, b: &Mapping, rng: &mut StdRng) -> Mapping {
        let mut child = a.clone();
        for d in 0..self.prob.num_dims() {
            if rng.gen_bool(0.5) {
                child.register_factors[d] = b.register_factors[d];
                child.pe_temporal_factors[d] = b.pe_temporal_factors[d];
                child.spatial_factors[d] = b.spatial_factors[d];
                child.outer_factors[d] = b.outer_factors[d];
            }
        }
        if rng.gen_bool(0.5) {
            child.pe_temporal_perm = b.pe_temporal_perm.clone();
        }
        if rng.gen_bool(0.5) {
            child.outer_perm = b.outer_perm.clone();
        }
        child
    }

    fn mutate(&self, mut m: Mapping, rng: &mut StdRng) -> Mapping {
        match rng.gen_range(0..4) {
            0 | 1 => {
                // Move one prime factor of one dimension between two levels.
                let d = rng.gen_range(0..self.prob.num_dims());
                let from = rng.gen_range(0..4);
                let to = (from + rng.gen_range(1..4)) % 4;
                let levels = [
                    &mut m.register_factors,
                    &mut m.pe_temporal_factors,
                    &mut m.spatial_factors,
                    &mut m.outer_factors,
                ];
                let value = levels[from][d];
                if let Some(p) = smallest_prime_factor(value) {
                    levels[from][d] /= p;
                    levels[to][d] *= p;
                }
            }
            2 => m.pe_temporal_perm.shuffle(rng),
            _ => m.outer_perm.shuffle(rng),
        }
        m
    }

    fn random_genome(&self, rng: &mut StdRng) -> Mapping {
        let n = self.prob.num_dims();
        let mut m = Mapping::untiled(&self.prob);
        for d in 0..n {
            let mut remaining = self.prob.extents[d];
            let mut split = [1u64; 4];
            while remaining > 1 {
                let p = smallest_prime_factor(remaining).expect("n > 1 has a factor");
                split[rng.gen_range(0..4)] *= p;
                remaining /= p;
            }
            m.register_factors[d] = split[0];
            m.pe_temporal_factors[d] = split[1];
            m.spatial_factors[d] = split[2];
            m.outer_factors[d] = split[3];
        }
        m.pe_temporal_perm.shuffle(rng);
        m.outer_perm.shuffle(rng);
        m
    }
}

fn smallest_prime_factor(n: u64) -> Option<u64> {
    if n <= 1 {
        return None;
    }
    let mut p = 2;
    while p * p <= n {
        if n.is_multiple_of(p) {
            return Some(p);
        }
        p += 1;
    }
    Some(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{Mapper, MapperOptions};
    use crate::problem::{conv2d, matmul};

    fn quick_opts() -> GammaOptions {
        GammaOptions {
            population: 30,
            generations: 40,
            ..GammaOptions::default()
        }
    }

    #[test]
    fn evolves_valid_low_energy_mappings() {
        let prob = matmul(64, 64, 64);
        let ga = GeneticMapper::new(prob.clone(), ArchSpec::eyeriss_like(), quick_opts());
        let result = ga.search();
        let (m, eval) = result.best.expect("GA finds a valid mapping");
        m.validate(&prob).unwrap();
        assert!(eval.pj_per_mac > 20.7, "register+MAC floor");
        assert!(
            eval.pj_per_mac < 60.0,
            "evolution should do much better than random"
        );
        // Initial population + (population - elites) children per generation.
        assert!(result.evaluated >= 30 + (30 - 4) * 40);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let prob = matmul(32, 32, 32);
        let run = || {
            GeneticMapper::new(prob.clone(), ArchSpec::eyeriss_like(), quick_opts())
                .search()
                .best
                .unwrap()
        };
        let (ma, ea) = run();
        let (mb, eb) = run();
        assert_eq!(ma, mb);
        assert_eq!(ea.energy_pj, eb.energy_pj);
    }

    #[test]
    fn competitive_with_random_search_at_equal_budget() {
        let prob = conv2d("t", 1, 32, 32, 26, 26, 3, 3, 1);
        let budget = 3_000;
        let ga = GeneticMapper::new(
            prob.clone(),
            ArchSpec::eyeriss_like(),
            GammaOptions {
                population: 30,
                generations: budget / 30,
                ..GammaOptions::default()
            },
        )
        .search();
        let random = Mapper::new(
            prob,
            ArchSpec::eyeriss_like(),
            MapperOptions {
                max_trials: budget,
                victory_condition: budget,
                threads: 1,
                seed: 5,
                ..MapperOptions::default()
            },
        )
        .search();
        let ga_best = ga.best.unwrap().1.energy_pj;
        let random_best = random.best.unwrap().1.energy_pj;
        // The GA should be in the same league (within 15%) or better.
        assert!(
            ga_best <= random_best * 1.15,
            "GA {ga_best} vs random {random_best}"
        );
    }

    #[test]
    fn crossover_preserves_validity() {
        let prob = matmul(24, 36, 48);
        let ga = GeneticMapper::new(prob.clone(), ArchSpec::eyeriss_like(), quick_opts());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let a = ga.random_genome(&mut rng);
            let b = ga.random_genome(&mut rng);
            let child = ga.crossover(&a, &b, &mut rng);
            child.validate(&prob).unwrap();
            let mutated = ga.mutate(child, &mut rng);
            mutated.validate(&prob).unwrap();
        }
    }

    #[test]
    fn delay_objective_supported() {
        let prob = matmul(64, 64, 64);
        let ga = GeneticMapper::new(
            prob,
            ArchSpec::eyeriss_like(),
            GammaOptions {
                objective: SearchObjective::Delay,
                ..quick_opts()
            },
        );
        let (_, eval) = ga.search().best.unwrap();
        assert!(
            eval.ipc > 4.0,
            "delay evolution should parallelize, got {}",
            eval.ipc
        );
    }
}
