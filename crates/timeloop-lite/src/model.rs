//! The analytical accelerator model: deterministic per-level access counts,
//! energy, and delay for one (problem, architecture, mapping) triple.
//!
//! Counting semantics (matching generated tiled code, validated against the
//! explicit simulator in [`crate::sim`]):
//!
//! * A tensor's copy into a level's buffer is hoisted outward past loops
//!   whose iterator is absent from the tensor, and lands just above the
//!   innermost *present* loop; the copied strip spans that loop's full range.
//! * On the SRAM side of the PE array, a word needed by several PEs along
//!   absent spatial dimensions is read once and multicast; each PE still
//!   writes its own register copy.
//! * Read-write tensors move in both directions at every boundary, and add
//!   one register read *and* write per MAC (the `4 eps_R + eps_op` term).

use crate::arch::ArchSpec;
use crate::mapping::{MapLevel, Mapping, MappingError};
use crate::problem::{DataSpace, ProblemSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Access counters and energy for one memory level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Level name (`regfile`, `sram`, `dram`).
    pub name: String,
    /// Word reads.
    pub reads: f64,
    /// Word writes.
    pub writes: f64,
    /// Energy attributed to this level, pJ.
    pub energy_pj: f64,
}

impl LevelStats {
    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> f64 {
        self.reads + self.writes
    }
}

/// The model's verdict for one mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Total energy, pJ.
    pub energy_pj: f64,
    /// Execution cycles (max over compute and bandwidth components).
    pub cycles: f64,
    /// MAC operations.
    pub macs: u64,
    /// Energy per MAC, pJ.
    pub pj_per_mac: f64,
    /// MACs per cycle.
    pub ipc: f64,
    /// PEs the mapping occupies.
    pub pe_used: u64,
    /// `pe_used / arch.pe_count`.
    pub utilization: f64,
    /// Per-level statistics: `[regfile, sram, dram]`.
    pub levels: Vec<LevelStats>,
}

/// Why a mapping could not be evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Structurally invalid mapping.
    Invalid(MappingError),
    /// Register-file footprint exceeds capacity.
    RegisterCapacity {
        /// Words required per PE.
        need: u64,
        /// Words available per PE.
        have: u64,
    },
    /// SRAM footprint exceeds capacity.
    SramCapacity {
        /// Words required.
        need: u64,
        /// Words available.
        have: u64,
    },
    /// Spatial fan-out exceeds the PE array.
    PeCount {
        /// PEs required.
        need: u64,
        /// PEs available.
        have: u64,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Invalid(e) => write!(f, "{e}"),
            EvalError::RegisterCapacity { need, have } => {
                write!(f, "register footprint {need} exceeds capacity {have}")
            }
            EvalError::SramCapacity { need, have } => {
                write!(f, "SRAM footprint {need} exceeds capacity {have}")
            }
            EvalError::PeCount { need, have } => {
                write!(f, "mapping needs {need} PEs, array has {have}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<MappingError> for EvalError {
    fn from(e: MappingError) -> Self {
        EvalError::Invalid(e)
    }
}

/// Fill traffic of one tensor at one temporal level: the words of one copied
/// strip and the number of copies per execution of the enclosing levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillPattern {
    /// Words moved by one copy operation.
    pub copy_words: u64,
    /// Copies per enclosing-level iteration.
    pub copies: u64,
}

impl FillPattern {
    /// Total words per enclosing-level iteration.
    pub fn words(&self) -> u64 {
        self.copy_words * self.copies
    }
}

/// Computes the hoisted fill pattern of `ds` for the loops of one temporal
/// level: `base_tile` is the tile fed from below, `factors` the level's
/// per-dimension trip counts, `perm` its loop order (outermost first, unit
/// loops already dropped).
pub fn fill_pattern(
    ds: &DataSpace,
    base_tile: &[u64],
    factors: &[u64],
    effective_perm: &[usize],
) -> FillPattern {
    // Innermost present loop: the copy lands just above it.
    let innermost_present = effective_perm.iter().rev().find(|&&d| ds.uses(d));
    match innermost_present {
        None => FillPattern {
            // Copy hoisted above the whole level: one copy of the base tile.
            copy_words: ds.footprint(base_tile),
            copies: 1,
        },
        Some(&dstar) => {
            let mut strip = base_tile.to_vec();
            strip[dstar] *= factors[dstar];
            let mut copies = 1u64;
            for &d in effective_perm {
                if d == dstar {
                    break;
                }
                copies *= factors[d];
            }
            FillPattern {
                copy_words: ds.footprint(&strip),
                copies,
            }
        }
    }
}

/// Per-tensor traffic at the two memory boundaries, before multicast and
/// outer-iteration scaling — exposed for the simulator cross-check.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorTraffic {
    /// Tensor name.
    pub name: String,
    /// Words one PE pulls from SRAM into registers per SRAM tile.
    pub reg_fill_words_per_pe_per_tile: u64,
    /// Words written into SRAM from DRAM over the whole execution.
    pub sram_fill_words_total: u64,
    /// Spatial multicast divisor's complement: PEs needing distinct data.
    pub spatial_distinct: u64,
}

/// Computes the per-tensor traffic patterns for a validated mapping.
pub fn tensor_traffic(prob: &ProblemSpec, mapping: &Mapping) -> Vec<TensorTraffic> {
    let t0 = mapping.tile_through(MapLevel::Register);
    let t2 = mapping.tile_through(MapLevel::Spatial);
    prob.data_spaces
        .iter()
        .map(|ds| {
            let reg = fill_pattern(
                ds,
                &t0,
                &mapping.pe_temporal_factors,
                &mapping.effective_perm(MapLevel::PeTemporal),
            );
            let sram = fill_pattern(
                ds,
                &t2,
                &mapping.outer_factors,
                &mapping.effective_perm(MapLevel::Outer),
            );
            let spatial_distinct: u64 = (0..prob.num_dims())
                .filter(|&d| ds.uses(d))
                .map(|d| mapping.spatial_factors[d])
                .product();
            TensorTraffic {
                name: ds.name.clone(),
                reg_fill_words_per_pe_per_tile: reg.words(),
                sram_fill_words_total: sram.words(),
                spatial_distinct,
            }
        })
        .collect()
}

/// [`evaluate`] under a `"tl_evaluate"` trace span carrying the verdict and
/// headline numbers. Use at low-frequency call sites (final rescoring, adapt
/// paths) — per-candidate loops should aggregate instead.
pub fn evaluate_traced(
    prob: &ProblemSpec,
    arch: &ArchSpec,
    mapping: &Mapping,
    ctx: &thistle_obs::TraceCtx,
) -> Result<EvalResult, EvalError> {
    let mut span = ctx.span("tl_evaluate");
    let result = evaluate(prob, arch, mapping);
    if span.enabled() {
        match &result {
            Ok(r) => {
                span.set("feasible", true);
                span.set("energy_pj", r.energy_pj);
                span.set("cycles", r.cycles);
                span.set("utilization", r.utilization);
            }
            Err(e) => {
                span.set("feasible", false);
                span.set("error", format!("{e:?}"));
            }
        }
    }
    result
}

/// Evaluates a mapping: validity, capacities, per-level accesses, energy,
/// cycles.
///
/// # Errors
///
/// Returns an [`EvalError`] for invalid mappings or capacity violations.
pub fn evaluate(
    prob: &ProblemSpec,
    arch: &ArchSpec,
    mapping: &Mapping,
) -> Result<EvalResult, EvalError> {
    mapping.validate(prob)?;

    let t0 = mapping.tile_through(MapLevel::Register);
    let t2 = mapping.tile_through(MapLevel::Spatial);
    let reg_need: u64 = prob.data_spaces.iter().map(|ds| ds.footprint(&t0)).sum();
    if reg_need > arch.regs_per_pe {
        return Err(EvalError::RegisterCapacity {
            need: reg_need,
            have: arch.regs_per_pe,
        });
    }
    let sram_need: u64 = prob.data_spaces.iter().map(|ds| ds.footprint(&t2)).sum();
    if sram_need > arch.sram_words {
        return Err(EvalError::SramCapacity {
            need: sram_need,
            have: arch.sram_words,
        });
    }
    let pe_used = mapping.pe_count();
    if pe_used > arch.pe_count {
        return Err(EvalError::PeCount {
            need: pe_used,
            have: arch.pe_count,
        });
    }

    let macs = prob.macs() as f64;
    let outer_iters: f64 = mapping.outer_factors.iter().product::<u64>() as f64;
    let traffic = tensor_traffic(prob, mapping);

    let mut reg = LevelStats {
        name: "regfile".into(),
        reads: 0.0,
        writes: 0.0,
        energy_pj: 0.0,
    };
    let mut sram = LevelStats {
        name: "sram".into(),
        reads: 0.0,
        writes: 0.0,
        energy_pj: 0.0,
    };
    let mut dram = LevelStats {
        name: "dram".into(),
        reads: 0.0,
        writes: 0.0,
        energy_pj: 0.0,
    };
    let mut reg_fill_per_pe = 0.0; // for the register-port bandwidth component

    for (ds, t) in prob.data_spaces.iter().zip(&traffic) {
        // MAC-operand accesses at the register file.
        reg.reads += macs;
        if ds.read_write {
            reg.writes += macs;
        }

        // SRAM -> register fills (and drains for read-write tensors).
        let per_pe_total = t.reg_fill_words_per_pe_per_tile as f64 * outer_iters;
        let directions = if ds.read_write { 2.0 } else { 1.0 };
        reg.writes += per_pe_total * pe_used as f64;
        sram.reads += per_pe_total * t.spatial_distinct as f64;
        if ds.read_write {
            reg.reads += per_pe_total * pe_used as f64;
            sram.writes += per_pe_total * t.spatial_distinct as f64;
        }
        reg_fill_per_pe += per_pe_total * directions;

        // DRAM -> SRAM fills (and drains).
        let dram_total = t.sram_fill_words_total as f64;
        dram.reads += dram_total;
        sram.writes += dram_total;
        if ds.read_write {
            dram.writes += dram_total;
            sram.reads += dram_total;
        }
    }

    reg.energy_pj = reg.accesses() * arch.reg_energy_pj;
    sram.energy_pj = sram.accesses() * arch.sram_energy_pj;
    dram.energy_pj = dram.accesses() * arch.dram_energy_pj;
    let mac_energy = macs * arch.mac_energy_pj;
    let energy_pj = mac_energy + reg.energy_pj + sram.energy_pj + dram.energy_pj;

    let bw = &arch.bandwidths;
    let compute_cycles = macs / pe_used as f64;
    let sram_cycles = sram.accesses() / bw.sram_words_per_cycle;
    let dram_cycles = dram.accesses() / bw.dram_words_per_cycle;
    let reg_cycles = reg_fill_per_pe / bw.reg_words_per_cycle_per_pe;
    let cycles = compute_cycles
        .max(sram_cycles)
        .max(dram_cycles)
        .max(reg_cycles);

    Ok(EvalResult {
        energy_pj,
        cycles,
        macs: prob.macs(),
        pj_per_mac: energy_pj / macs,
        ipc: macs / cycles,
        pe_used,
        utilization: pe_used as f64 / arch.pe_count as f64,
        levels: vec![reg, sram, dram],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{conv2d, matmul};

    fn small_arch() -> ArchSpec {
        let mut a = ArchSpec::eyeriss_like();
        a.pe_count = 16;
        a.regs_per_pe = 64;
        a.sram_words = 4096;
        a
    }

    fn simple_mapping(prob: &ProblemSpec) -> Mapping {
        // 8x8x8 matmul: registers 2x2x2, pe temporal 2x1x2, spatial 2x2x1,
        // outer 1x2x2.
        let mut m = Mapping::untiled(prob);
        m.register_factors = vec![2, 2, 2];
        m.pe_temporal_factors = vec![2, 1, 2];
        m.spatial_factors = vec![2, 2, 1];
        m.outer_factors = vec![1, 2, 2];
        m
    }

    #[test]
    fn capacity_violations_are_reported() {
        let p = matmul(64, 64, 64);
        let a = small_arch();
        let m = Mapping::untiled(&p);
        match evaluate(&p, &a, &m) {
            Err(EvalError::RegisterCapacity { need, have }) => {
                assert_eq!(need, 3 * 64 * 64);
                assert_eq!(have, 64);
            }
            other => panic!("expected register capacity error, got {other:?}"),
        }
    }

    #[test]
    fn pe_overflow_is_reported() {
        let p = matmul(8, 8, 8);
        let a = small_arch();
        let mut m = simple_mapping(&p);
        m.spatial_factors = vec![8, 8, 1];
        m.pe_temporal_factors = vec![1, 1, 2];
        m.outer_factors = vec![1, 1, 2];
        m.register_factors = vec![1, 1, 2];
        m.validate(&p).unwrap();
        assert!(matches!(
            evaluate(&p, &a, &m),
            Err(EvalError::PeCount { need: 64, have: 16 })
        ));
    }

    #[test]
    fn energy_components_add_up() {
        let p = matmul(8, 8, 8);
        let a = small_arch();
        let m = simple_mapping(&p);
        let r = evaluate(&p, &a, &m).unwrap();
        let sum: f64 =
            r.levels.iter().map(|l| l.energy_pj).sum::<f64>() + r.macs as f64 * a.mac_energy_pj;
        assert!((r.energy_pj - sum).abs() < 1e-9);
        assert!((r.pj_per_mac - r.energy_pj / 512.0).abs() < 1e-12);
    }

    #[test]
    fn mac_register_accesses_are_four_per_op() {
        let p = matmul(4, 4, 4);
        let a = small_arch();
        let mut m = Mapping::untiled(&p);
        m.register_factors = vec![4, 4, 4];
        // Tiny enough to fit: footprint 3*16 = 48 <= 64.
        let r = evaluate(&p, &a, &m).unwrap();
        let reg = &r.levels[0];
        // 3 reads + 1 write per MAC, plus one initial fill of each tensor and
        // one drain of C.
        let macs = 64.0;
        assert!(reg.reads >= 3.0 * macs && reg.writes >= macs);
        let fills = 16.0 + 16.0 + 16.0 + 16.0; // A, B, C in; C out
        assert!((reg.accesses() - (4.0 * macs + fills)).abs() < 1e-9);
    }

    #[test]
    fn ipc_is_bounded_by_pe_count() {
        let p = matmul(64, 64, 64);
        let a = ArchSpec::eyeriss_like();
        let mut m = Mapping::untiled(&p);
        m.register_factors = vec![4, 4, 4];
        m.pe_temporal_factors = vec![2, 2, 4];
        m.spatial_factors = vec![4, 4, 1];
        m.outer_factors = vec![2, 2, 4];
        let r = evaluate(&p, &a, &m).unwrap();
        assert!(r.ipc <= 16.0 + 1e-9);
        assert_eq!(r.pe_used, 16);
    }

    #[test]
    fn multicast_reduces_sram_reads() {
        // Same mapping except A's absent dim (j) is spatial: SRAM reads for A
        // must not scale with p_j.
        let p = matmul(16, 16, 16);
        let a = small_arch();
        let mut m1 = Mapping::untiled(&p);
        m1.register_factors = vec![2, 2, 4];
        m1.pe_temporal_factors = vec![2, 2, 4];
        m1.spatial_factors = vec![1, 4, 1]; // j spatial: multicast for A
        m1.outer_factors = vec![4, 1, 1];
        m1.validate(&p).unwrap();
        let mut m2 = m1.clone();
        m2.spatial_factors = vec![4, 1, 1]; // i spatial: A distributed
        m2.outer_factors = vec![1, 4, 1];
        m2.validate(&p).unwrap();
        let t1 = tensor_traffic(&p, &m1);
        let t2 = tensor_traffic(&p, &m2);
        let a1 = t1.iter().find(|t| t.name == "A").unwrap();
        let a2 = t2.iter().find(|t| t.name == "A").unwrap();
        assert_eq!(a1.spatial_distinct, 1, "A is multicast along j");
        assert_eq!(a2.spatial_distinct, 4, "A is distributed along i");
        let _ = a;
    }

    #[test]
    fn hoisting_reduces_fills() {
        // Out tensor: placing absent dim (k/reduction) innermost lets the
        // copy hoist past it.
        let p = matmul(8, 8, 8);
        let mut m = Mapping::untiled(&p);
        m.register_factors = vec![2, 2, 2];
        m.pe_temporal_factors = vec![4, 4, 4];
        m.outer_factors = vec![1, 1, 1];
        m.spatial_factors = vec![1, 1, 1];

        // k innermost: C copy hoists past k.
        m.pe_temporal_perm = vec![0, 1, 2];
        let hoisted = tensor_traffic(&p, &m)
            .into_iter()
            .find(|t| t.name == "C")
            .unwrap();
        // k outermost: C copy repeats for each k.
        m.pe_temporal_perm = vec![2, 0, 1];
        let repeated = tensor_traffic(&p, &m)
            .into_iter()
            .find(|t| t.name == "C")
            .unwrap();
        assert_eq!(
            repeated.reg_fill_words_per_pe_per_tile,
            4 * hoisted.reg_fill_words_per_pe_per_tile
        );
    }

    #[test]
    fn conv_halo_counts_in_register_capacity() {
        let p = conv2d("t", 1, 4, 4, 8, 8, 3, 3, 1);
        let a = small_arch();
        let mut m = Mapping::untiled(&p);
        // Register tile: k=1, c=1, h=2, w=2 (+3x3 kernel resident).
        m.register_factors = vec![1, 1, 1, 3, 3, 2, 2];
        m.pe_temporal_factors = vec![1, 4, 4, 1, 1, 2, 2];
        m.spatial_factors = vec![1, 1, 1, 1, 1, 2, 2];
        m.outer_factors = vec![1, 1, 1, 1, 1, 1, 1];
        m.validate(&p).unwrap();
        let r = evaluate(&p, &a, &m).unwrap();
        assert!(r.energy_pj > 0.0);
        // In footprint at register: (2+2)*(2+2) = 16; Ker 9; Out 4.
        let t0 = m.tile_through(MapLevel::Register);
        assert_eq!(p.data_spaces[0].footprint(&t0), 16);
        assert_eq!(p.data_spaces[1].footprint(&t0), 9);
        assert_eq!(p.data_spaces[2].footprint(&t0), 4);
    }
}
