//! Architecture specifications: the three-level accelerator template of the
//! paper (DRAM -> shared SRAM -> PE array with register files and MACs).

use serde::{Deserialize, Serialize};
use thistle_arch::{ArchConfig, Bandwidths, TechnologyParams};

/// A complete accelerator description with per-access energies resolved.
///
/// # Examples
///
/// ```
/// use timeloop_lite::arch::ArchSpec;
/// let a = ArchSpec::eyeriss_like();
/// assert_eq!(a.pe_count, 168);
/// assert!(a.sram_energy_pj > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// Architecture name (used in emitted specs).
    pub name: String,
    /// Number of processing elements.
    pub pe_count: u64,
    /// Register-file words per PE.
    pub regs_per_pe: u64,
    /// Shared SRAM capacity in words.
    pub sram_words: u64,
    /// Word width in bits.
    pub word_bits: u32,
    /// Energy per MAC, pJ.
    pub mac_energy_pj: f64,
    /// Energy per register-file access, pJ.
    pub reg_energy_pj: f64,
    /// Energy per SRAM access, pJ.
    pub sram_energy_pj: f64,
    /// Energy per DRAM access, pJ.
    pub dram_energy_pj: f64,
    /// Transfer bandwidths.
    pub bandwidths: Bandwidths,
}

impl ArchSpec {
    /// Builds a spec from an [`ArchConfig`] using the Eq. 4 energy models and
    /// the given technology parameters.
    pub fn from_config(
        name: &str,
        config: &ArchConfig,
        tech: &TechnologyParams,
        bandwidths: Bandwidths,
    ) -> Self {
        ArchSpec {
            name: name.to_owned(),
            pe_count: config.pe_count,
            regs_per_pe: config.regs_per_pe,
            sram_words: config.sram_words,
            word_bits: config.word_bits,
            mac_energy_pj: tech.energy_mac_pj,
            reg_energy_pj: config.register_energy_pj(tech),
            sram_energy_pj: config.sram_energy_pj(tech),
            dram_energy_pj: tech.energy_dram_pj,
            bandwidths,
        }
    }

    /// The Eyeriss baseline under Table III technology parameters.
    pub fn eyeriss_like() -> Self {
        ArchSpec::from_config(
            "eyeriss",
            &ArchConfig::eyeriss(),
            &TechnologyParams::cgo2022_45nm(),
            Bandwidths::default(),
        )
    }

    /// The configuration triple `(P, R, S)` of this spec.
    pub fn config(&self) -> ArchConfig {
        ArchConfig {
            pe_count: self.pe_count,
            regs_per_pe: self.regs_per_pe,
            sram_words: self.sram_words,
            word_bits: self.word_bits,
        }
    }

    /// Chip area of this spec under the Eq. 5 linear model.
    pub fn area_um2(&self, tech: &TechnologyParams) -> f64 {
        self.config().area_um2(tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eyeriss_energies_resolved_from_eq4() {
        let a = ArchSpec::eyeriss_like();
        assert!((a.reg_energy_pj - 9.06719e-3 * 512.0).abs() < 1e-9);
        assert!((a.sram_energy_pj - 17.88e-3 * 256.0).abs() < 1e-9);
        assert_eq!(a.dram_energy_pj, 128.0);
    }

    #[test]
    fn config_roundtrips() {
        let a = ArchSpec::eyeriss_like();
        let c = a.config();
        assert_eq!(c.pe_count, 168);
        assert_eq!(c.regs_per_pe, 512);
        assert_eq!(c.sram_words, 65536);
    }

    #[test]
    fn custom_config_scales_energy() {
        let tech = TechnologyParams::cgo2022_45nm();
        let small = ArchSpec::from_config(
            "small",
            &ArchConfig::new(64, 16, 4096),
            &tech,
            Bandwidths::default(),
        );
        let big = ArchSpec::eyeriss_like();
        assert!(small.reg_energy_pj < big.reg_energy_pj / 10.0);
        assert!(small.sram_energy_pj < big.sram_energy_pj);
    }
}
