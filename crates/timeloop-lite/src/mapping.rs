//! Mappings: how a problem's loops are tiled, ordered, and spatially
//! distributed on the three-level template.
//!
//! A mapping assigns each iteration dimension four factors whose product is
//! the dimension's extent, one per level (innermost to outermost):
//!
//! 1. `register_factors` — innermost temporal loops at the register file;
//! 2. `pe_temporal_factors` (+ `pe_temporal_perm`) — per-PE temporal loops
//!    stepping through register tiles;
//! 3. `spatial_factors` — the PE grid;
//! 4. `outer_factors` (+ `outer_perm`) — temporal loops over SRAM tiles.
//!
//! Permutations list dimension ids outermost-first; loops with factor 1 do
//! not exist in generated code and never affect hoisting.

use crate::problem::ProblemSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of tiling levels in the template.
pub const NUM_LEVELS: usize = 4;

/// Identifies one tiling level of the template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapLevel {
    /// Innermost register-resident loops.
    Register,
    /// Per-PE temporal loops.
    PeTemporal,
    /// Spatial PE-grid distribution.
    Spatial,
    /// Outer temporal loops over SRAM tiles.
    Outer,
}

impl MapLevel {
    /// Dense index, innermost = 0.
    pub fn index(self) -> usize {
        match self {
            MapLevel::Register => 0,
            MapLevel::PeTemporal => 1,
            MapLevel::Spatial => 2,
            MapLevel::Outer => 3,
        }
    }
}

/// A complete mapping for the three-level template.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// Per-dimension trip counts of the innermost register loops.
    pub register_factors: Vec<u64>,
    /// Per-dimension trip counts of the per-PE temporal loops.
    pub pe_temporal_factors: Vec<u64>,
    /// Loop order of the per-PE temporal level, dimension ids outermost
    /// first.
    pub pe_temporal_perm: Vec<usize>,
    /// Per-dimension spatial fan-out across the PE grid.
    pub spatial_factors: Vec<u64>,
    /// Per-dimension trip counts of the outer (SRAM-tile) loops.
    pub outer_factors: Vec<u64>,
    /// Loop order of the outer level, dimension ids outermost first.
    pub outer_perm: Vec<usize>,
}

/// A mapping that fails validation, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingError(String);

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid mapping: {}", self.0)
    }
}

impl std::error::Error for MappingError {}

impl Mapping {
    /// The trivial mapping: the whole iteration space in one register tile
    /// on one PE. Valid for any problem (though rarely within capacity).
    pub fn untiled(prob: &ProblemSpec) -> Self {
        let n = prob.num_dims();
        Mapping {
            register_factors: prob.extents.clone(),
            pe_temporal_factors: vec![1; n],
            pe_temporal_perm: (0..n).collect(),
            spatial_factors: vec![1; n],
            outer_factors: vec![1; n],
            outer_perm: (0..n).collect(),
        }
    }

    /// Factors at one level.
    pub fn factors(&self, level: MapLevel) -> &[u64] {
        match level {
            MapLevel::Register => &self.register_factors,
            MapLevel::PeTemporal => &self.pe_temporal_factors,
            MapLevel::Spatial => &self.spatial_factors,
            MapLevel::Outer => &self.outer_factors,
        }
    }

    /// Per-dimension tile extents spanning all levels up to and including
    /// `level`.
    pub fn tile_through(&self, level: MapLevel) -> Vec<u64> {
        let n = self.register_factors.len();
        let mut tile = vec![1u64; n];
        for l in [
            MapLevel::Register,
            MapLevel::PeTemporal,
            MapLevel::Spatial,
            MapLevel::Outer,
        ]
        .iter()
        .take(level.index() + 1)
        {
            for (t, &f) in tile.iter_mut().zip(self.factors(*l)) {
                *t *= f;
            }
        }
        tile
    }

    /// Number of PEs the mapping occupies.
    pub fn pe_count(&self) -> u64 {
        self.spatial_factors.iter().product()
    }

    /// Checks structural validity against a problem: factor products must
    /// equal extents, and permutations must be permutations of the dims.
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] naming the violated property.
    pub fn validate(&self, prob: &ProblemSpec) -> Result<(), MappingError> {
        let n = prob.num_dims();
        for (what, v) in [
            ("register_factors", &self.register_factors),
            ("pe_temporal_factors", &self.pe_temporal_factors),
            ("spatial_factors", &self.spatial_factors),
            ("outer_factors", &self.outer_factors),
        ] {
            if v.len() != n {
                return Err(MappingError(format!("{what} has wrong arity")));
            }
            if v.contains(&0) {
                return Err(MappingError(format!("{what} contains a zero factor")));
            }
        }
        for d in 0..n {
            let product = self.register_factors[d]
                * self.pe_temporal_factors[d]
                * self.spatial_factors[d]
                * self.outer_factors[d];
            if product != prob.extents[d] {
                return Err(MappingError(format!(
                    "dimension {} factors to {product}, extent is {}",
                    prob.dim_names[d], prob.extents[d]
                )));
            }
        }
        for (what, perm) in [
            ("pe_temporal_perm", &self.pe_temporal_perm),
            ("outer_perm", &self.outer_perm),
        ] {
            let mut seen = vec![false; n];
            if perm.len() != n {
                return Err(MappingError(format!("{what} has wrong arity")));
            }
            for &d in perm {
                if d >= n || seen[d] {
                    return Err(MappingError(format!("{what} is not a permutation")));
                }
                seen[d] = true;
            }
        }
        Ok(())
    }

    /// The loops of a temporal level that actually exist (factor > 1),
    /// outermost first.
    pub fn effective_perm(&self, level: MapLevel) -> Vec<usize> {
        let (perm, factors) = match level {
            MapLevel::PeTemporal => (&self.pe_temporal_perm, &self.pe_temporal_factors),
            MapLevel::Outer => (&self.outer_perm, &self.outer_factors),
            _ => panic!("only temporal levels have loop orders"),
        };
        perm.iter().copied().filter(|&d| factors[d] > 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::matmul;

    #[test]
    fn untiled_is_valid() {
        let p = matmul(8, 8, 8);
        let m = Mapping::untiled(&p);
        m.validate(&p).unwrap();
        assert_eq!(m.pe_count(), 1);
        assert_eq!(m.tile_through(MapLevel::Outer), vec![8, 8, 8]);
    }

    #[test]
    fn tile_through_accumulates() {
        let p = matmul(16, 16, 16);
        let m = Mapping {
            register_factors: vec![2, 2, 4],
            pe_temporal_factors: vec![2, 2, 2],
            pe_temporal_perm: vec![0, 1, 2],
            spatial_factors: vec![2, 2, 1],
            outer_factors: vec![2, 2, 2],
            outer_perm: vec![0, 1, 2],
        };
        m.validate(&p).unwrap();
        assert_eq!(m.tile_through(MapLevel::Register), vec![2, 2, 4]);
        assert_eq!(m.tile_through(MapLevel::PeTemporal), vec![4, 4, 8]);
        assert_eq!(m.tile_through(MapLevel::Spatial), vec![8, 8, 8]);
        assert_eq!(m.tile_through(MapLevel::Outer), vec![16, 16, 16]);
        assert_eq!(m.pe_count(), 4);
    }

    #[test]
    fn validation_catches_bad_products() {
        let p = matmul(8, 8, 8);
        let mut m = Mapping::untiled(&p);
        m.register_factors[0] = 4; // product now 4, extent 8
        assert!(m.validate(&p).is_err());
    }

    #[test]
    fn validation_catches_bad_perm() {
        let p = matmul(8, 8, 8);
        let mut m = Mapping::untiled(&p);
        m.outer_perm = vec![0, 0, 2];
        let err = m.validate(&p).unwrap_err();
        assert!(err.to_string().contains("not a permutation"));
    }

    #[test]
    fn effective_perm_drops_unit_loops() {
        let p = matmul(8, 8, 8);
        let m = Mapping {
            register_factors: vec![8, 4, 8],
            pe_temporal_factors: vec![1, 2, 1],
            pe_temporal_perm: vec![2, 1, 0],
            spatial_factors: vec![1, 1, 1],
            outer_factors: vec![1, 1, 1],
            outer_perm: vec![0, 1, 2],
        };
        m.validate(&p).unwrap();
        assert_eq!(m.effective_perm(MapLevel::PeTemporal), vec![1]);
        assert!(m.effective_perm(MapLevel::Outer).is_empty());
    }
}
