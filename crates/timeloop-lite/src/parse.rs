//! Parsing of the Timeloop-style YAML documents emitted by [`crate::emit`].
//!
//! Together with the emitters this makes specifications round-trippable: a
//! design exported by Thistle (or written by hand in the same shape) can be
//! loaded back and evaluated. The parser handles exactly the subset the
//! emitters produce — an indentation-structured tree of `key: value` lines
//! and `- ` list items — not general YAML.

use crate::arch::ArchSpec;
use crate::mapping::Mapping;
use crate::problem::{DataSpace, ProblemSpec};
use std::fmt;
use thistle_arch::{ArchConfig, Bandwidths, TechnologyParams};

/// A parse failure, with the offending (zero-based) line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line: usize,
    what: String,
}

impl ParseError {
    fn new(line: usize, what: impl Into<String>) -> Self {
        ParseError {
            line,
            what: what.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line + 1, self.what)
    }
}

impl std::error::Error for ParseError {}

/// Parses a problem document produced by [`crate::emit::problem_yaml`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the first malformed line.
///
/// # Examples
///
/// ```
/// use timeloop_lite::{emit, parse, problem};
/// let spec = problem::matmul(8, 16, 32);
/// let text = emit::problem_yaml(&spec);
/// let back = parse::problem_from_yaml(&text).unwrap();
/// assert_eq!(back, spec);
/// ```
pub fn problem_from_yaml(text: &str) -> Result<ProblemSpec, ParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut name = String::new();
    let mut dim_names: Vec<String> = Vec::new();
    let mut data_spaces: Vec<DataSpace> = Vec::new();
    let mut extents: Vec<u64> = Vec::new();
    let mut in_instance = false;

    for (i, line) in lines.iter().enumerate() {
        let t = line.trim();
        if indent_of(line) == 4 {
            if let Some(v) = t.strip_prefix("name: ") {
                name = v.to_owned();
            }
            if let Some(dims) = t.strip_prefix("dimensions: [") {
                dim_names = dims
                    .trim_end_matches(']')
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .collect();
            }
        }
        if t == "instance:" {
            in_instance = true;
            extents = vec![0; dim_names.len()];
            continue;
        }
        if indent_of(line) == 6 {
            if let Some(ds_name) = t.strip_prefix("- name: ") {
                data_spaces.push(DataSpace {
                    name: ds_name.to_owned(),
                    read_write: false,
                    projection: Vec::new(),
                });
            }
        }
        if indent_of(line) == 8 && t == "read-write: true" {
            let ds = data_spaces
                .last_mut()
                .ok_or_else(|| ParseError::new(i, "read-write outside a data space"))?;
            ds.read_write = true;
        }
        if indent_of(line) == 10 {
            if let Some(body) = t.strip_prefix("- [") {
                let ds = data_spaces
                    .last_mut()
                    .ok_or_else(|| ParseError::new(i, "projection outside a data space"))?;
                ds.projection
                    .push(parse_index_expr(body.trim_end_matches(']'), &dim_names, i)?);
            }
        }
        if in_instance {
            if let Some((key, value)) = t.split_once(": ") {
                if let Some(d) = dim_names.iter().position(|n| n == key.trim()) {
                    extents[d] = value
                        .trim()
                        .parse()
                        .map_err(|_| ParseError::new(i, "bad extent"))?;
                }
            }
        }
    }
    if dim_names.is_empty() {
        return Err(ParseError::new(0, "no dimensions found"));
    }
    if extents.len() != dim_names.len() || extents.contains(&0) {
        return Err(ParseError::new(
            lines.len().saturating_sub(1),
            "incomplete instance",
        ));
    }
    Ok(ProblemSpec {
        name,
        dim_names,
        extents,
        data_spaces,
    })
}

/// One projection line body: `[I], [K, 2]` (outer brackets already removed).
fn parse_index_expr(
    body: &str,
    dim_names: &[String],
    line: usize,
) -> Result<Vec<(usize, f64)>, ParseError> {
    let mut out = Vec::new();
    for term in body.split("], [") {
        let term = term.trim_matches(|c| c == '[' || c == ']' || c == ' ');
        let (dim_text, coef) = match term.split_once(',') {
            Some((d, c)) => (
                d.trim(),
                c.trim()
                    .parse::<f64>()
                    .map_err(|_| ParseError::new(line, "bad coefficient"))?,
            ),
            None => (term, 1.0),
        };
        let d = dim_names
            .iter()
            .position(|n| n == dim_text)
            .ok_or_else(|| ParseError::new(line, format!("unknown dimension {dim_text}")))?;
        out.push((d, coef));
    }
    Ok(out)
}

/// Parses a mapping document produced by [`crate::emit::mapping_yaml`]
/// against its problem.
///
/// The emitter's block order is fixed (DRAM temporal, SRAM spatial, SRAM
/// temporal, RegisterFile temporal); permutations are listed
/// innermost-first, as Timeloop does.
///
/// # Errors
///
/// Returns a [`ParseError`] on unknown dimensions, bad factors, or a
/// missing block.
pub fn mapping_from_yaml(text: &str, prob: &ProblemSpec) -> Result<Mapping, ParseError> {
    #[derive(Default, Clone)]
    struct Block {
        target: String,
        kind: String,
        factors: Vec<u64>,
        perm: Vec<usize>,
    }
    let n = prob.num_dims();
    let mut blocks: Vec<Block> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if let Some(v) = t.strip_prefix("- target: ") {
            blocks.push(Block {
                target: v.to_owned(),
                factors: vec![1; n],
                perm: (0..n).collect(),
                ..Block::default()
            });
        } else if let Some(v) = t.strip_prefix("type: ") {
            let b = blocks
                .last_mut()
                .ok_or_else(|| ParseError::new(i, "type outside a block"))?;
            b.kind = v.to_owned();
        } else if let Some(v) = t.strip_prefix("factors: ") {
            let b = blocks
                .last_mut()
                .ok_or_else(|| ParseError::new(i, "factors outside a block"))?;
            for pair in v.split_whitespace() {
                let (dim_text, value) = pair
                    .split_once('=')
                    .ok_or_else(|| ParseError::new(i, "factor without '='"))?;
                let d = prob
                    .dim(dim_text)
                    .ok_or_else(|| ParseError::new(i, format!("unknown dimension {dim_text}")))?;
                b.factors[d] = value
                    .parse()
                    .map_err(|_| ParseError::new(i, "bad factor"))?;
            }
        } else if let Some(v) = t.strip_prefix("permutation: ") {
            let b = blocks
                .last_mut()
                .ok_or_else(|| ParseError::new(i, "permutation outside a block"))?;
            // Innermost-first on disk; store outermost-first.
            let mut perm = Vec::with_capacity(n);
            for name in v.split_whitespace().rev() {
                let d = prob
                    .dim(name)
                    .ok_or_else(|| ParseError::new(i, format!("unknown dimension {name}")))?;
                perm.push(d);
            }
            if perm.len() != n {
                return Err(ParseError::new(i, "permutation does not cover all dims"));
            }
            b.perm = perm;
        }
    }
    let find = |target: &str, kind: &str| -> Result<Block, ParseError> {
        blocks
            .iter()
            .find(|b| b.target == target && b.kind == kind)
            .cloned()
            .ok_or_else(|| ParseError::new(0, format!("missing block {target}/{kind}")))
    };
    let outer = find("DRAM", "temporal")?;
    let spatial = find("SRAM", "spatial")?;
    let pe_temporal = find("SRAM", "temporal")?;
    let register = find("RegisterFile", "temporal")?;
    Ok(Mapping {
        register_factors: register.factors,
        pe_temporal_factors: pe_temporal.factors,
        pe_temporal_perm: pe_temporal.perm,
        spatial_factors: spatial.factors,
        outer_factors: outer.factors,
        outer_perm: outer.perm,
    })
}

/// Parses the architecture configuration out of a document produced by
/// [`crate::emit::arch_yaml`], resolving per-access energies from `tech`
/// (the YAML carries structure and bandwidths; energies come from the
/// technology model, as with Timeloop + Accelergy).
///
/// # Errors
///
/// Returns a [`ParseError`] if the PE array, SRAM depth, or register depth
/// cannot be found.
pub fn arch_from_yaml(text: &str, tech: &TechnologyParams) -> Result<ArchSpec, ParseError> {
    let mut pe_count: Option<u64> = None;
    let mut depths: Vec<u64> = Vec::new();
    let mut word_bits: Option<u32> = None;
    let mut bandwidths: Vec<f64> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if let Some(v) = t.strip_prefix("- name: PE[0..") {
            let hi: u64 = v
                .trim_end_matches(']')
                .parse()
                .map_err(|_| ParseError::new(i, "bad PE range"))?;
            pe_count = Some(hi + 1);
        }
        if let Some(v) = t.strip_prefix("depth: ") {
            depths.push(v.parse().map_err(|_| ParseError::new(i, "bad depth"))?);
        }
        if let Some(v) = t.strip_prefix("word-bits: ") {
            word_bits.get_or_insert(v.parse().map_err(|_| ParseError::new(i, "bad word-bits"))?);
        }
        if let Some(v) = t.strip_prefix("read_bandwidth: ") {
            bandwidths.push(v.parse().map_err(|_| ParseError::new(i, "bad bandwidth"))?);
        }
    }
    let pe_count = pe_count.ok_or_else(|| ParseError::new(0, "no PE array found"))?;
    let (&sram_words, &regs_per_pe) = match depths.as_slice() {
        [s, r, ..] => (s, r),
        _ => return Err(ParseError::new(0, "expected SRAM and register depths")),
    };
    let mut bw = Bandwidths::default();
    if let [dram, sram, ..] = bandwidths.as_slice() {
        bw.dram_words_per_cycle = *dram;
        bw.sram_words_per_cycle = *sram;
    }
    let mut config = ArchConfig::new(pe_count, regs_per_pe, sram_words);
    config.word_bits = word_bits.unwrap_or(16);
    Ok(ArchSpec::from_config("parsed", &config, tech, bw))
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit;
    use crate::problem::{conv2d, matmul};
    use rand::prelude::*;

    #[test]
    fn problem_roundtrip_matmul_and_conv() {
        for spec in [matmul(8, 16, 32), conv2d("c", 2, 8, 4, 10, 12, 3, 3, 2)] {
            let text = emit::problem_yaml(&spec);
            let back = problem_from_yaml(&text).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn mapping_roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(8);
        let prob = conv2d("c", 2, 8, 4, 6, 6, 3, 3, 1);
        for _ in 0..25 {
            let mut m = Mapping::untiled(&prob);
            for d in 0..prob.num_dims() {
                // Random redistribution of each extent over the levels.
                let mut rem = prob.extents[d];
                let mut split = [1u64; 4];
                while rem > 1 {
                    let p = (2..=rem).find(|q| rem.is_multiple_of(*q)).unwrap();
                    split[rng.gen_range(0..4)] *= p;
                    rem /= p;
                }
                m.register_factors[d] = split[0];
                m.pe_temporal_factors[d] = split[1];
                m.spatial_factors[d] = split[2];
                m.outer_factors[d] = split[3];
            }
            m.pe_temporal_perm.shuffle(&mut rng);
            m.outer_perm.shuffle(&mut rng);
            let text = emit::mapping_yaml(&prob, &m);
            let back = mapping_from_yaml(&text, &prob).unwrap();
            // The register/spatial permutations are emitted canonically, so
            // compare the order-bearing fields and factors.
            assert_eq!(back.register_factors, m.register_factors);
            assert_eq!(back.pe_temporal_factors, m.pe_temporal_factors);
            assert_eq!(back.spatial_factors, m.spatial_factors);
            assert_eq!(back.outer_factors, m.outer_factors);
            assert_eq!(back.pe_temporal_perm, m.pe_temporal_perm);
            assert_eq!(back.outer_perm, m.outer_perm);
        }
    }

    #[test]
    fn arch_roundtrip_eyeriss() {
        let tech = TechnologyParams::cgo2022_45nm();
        let arch = ArchSpec::eyeriss_like();
        let text = emit::arch_yaml(&arch);
        let back = arch_from_yaml(&text, &tech).unwrap();
        assert_eq!(back.pe_count, arch.pe_count);
        assert_eq!(back.regs_per_pe, arch.regs_per_pe);
        assert_eq!(back.sram_words, arch.sram_words);
        assert_eq!(back.word_bits, arch.word_bits);
        assert_eq!(back.reg_energy_pj, arch.reg_energy_pj);
    }

    #[test]
    fn parsed_specs_evaluate_identically() {
        // Full loop: emit all three documents, parse them back, and check
        // the referee gives the same verdict.
        let prob = matmul(16, 16, 16);
        let arch = ArchSpec::eyeriss_like();
        let mut m = Mapping::untiled(&prob);
        m.register_factors = vec![4, 4, 4];
        m.pe_temporal_factors = vec![2, 2, 2];
        m.spatial_factors = vec![2, 2, 1];
        m.outer_factors = vec![1, 1, 2];
        let direct = crate::model::evaluate(&prob, &arch, &m).unwrap();

        let tech = TechnologyParams::cgo2022_45nm();
        let p2 = problem_from_yaml(&emit::problem_yaml(&prob)).unwrap();
        let a2 = arch_from_yaml(&emit::arch_yaml(&arch), &tech).unwrap();
        let m2 = mapping_from_yaml(&emit::mapping_yaml(&prob, &m), &p2).unwrap();
        let parsed = crate::model::evaluate(&p2, &a2, &m2).unwrap();
        assert_eq!(parsed.energy_pj, direct.energy_pj);
        assert_eq!(parsed.cycles, direct.cycles);
    }

    #[test]
    fn malformed_documents_are_rejected_with_line_numbers() {
        let err = problem_from_yaml("problem:\n  shape:\n").unwrap_err();
        assert!(err.to_string().contains("no dimensions"));

        let prob = matmul(4, 4, 4);
        let text = emit::mapping_yaml(&prob, &Mapping::untiled(&prob))
            .replace("factors: I=4 J=4 K=4", "factors: I=4 J=4 Z=4");
        let err = mapping_from_yaml(&text, &prob).unwrap_err();
        assert!(err.to_string().contains("unknown dimension Z"), "{err}");

        let err = arch_from_yaml("architecture:\n", &TechnologyParams::cgo2022_45nm()).unwrap_err();
        assert!(err.to_string().contains("no PE array"));
    }
}
