//! Emission of Timeloop-style YAML documents (Fig. 3 of the paper).
//!
//! Thistle's pipeline ends by generating a Timeloop architecture spec and
//! mapping for the chosen design point; these emitters produce documents in
//! the same shape so a design can be inspected (or fed to real Timeloop)
//! without extra tooling. The YAML is hand-rolled — the documents are small
//! trees with no escaping subtleties.

use crate::arch::ArchSpec;
use crate::mapping::Mapping;
use crate::problem::ProblemSpec;
use std::fmt::Write as _;

/// Renders the problem document (dimensions, data spaces, instance) in the
/// style of Fig. 3(b).
pub fn problem_yaml(prob: &ProblemSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "problem:");
    let _ = writeln!(out, "  shape:");
    let _ = writeln!(out, "    name: {}", prob.name);
    let _ = writeln!(out, "    dimensions: [{}]", prob.dim_names.join(", "));
    let _ = writeln!(out, "    data-spaces:");
    for ds in &prob.data_spaces {
        let _ = writeln!(out, "      - name: {}", ds.name);
        let _ = writeln!(out, "        projection:");
        for expr in &ds.projection {
            let terms: Vec<String> = expr
                .iter()
                .map(|&(d, c)| {
                    if c == 1.0 {
                        format!("[{}]", prob.dim_names[d])
                    } else {
                        format!("[{}, {}]", prob.dim_names[d], c)
                    }
                })
                .collect();
            let _ = writeln!(out, "          - [{}]", terms.join(", "));
        }
        if ds.read_write {
            let _ = writeln!(out, "        read-write: true");
        }
    }
    let _ = writeln!(out, "  instance:");
    for (name, extent) in prob.dim_names.iter().zip(&prob.extents) {
        let _ = writeln!(out, "    {name}: {extent}");
    }
    out
}

/// Renders the architecture document (memory tree, PEs) in the style of
/// Fig. 3(a).
pub fn arch_yaml(arch: &ArchSpec) -> String {
    let bw = &arch.bandwidths;
    let mut out = String::new();
    let _ = writeln!(out, "architecture:");
    let _ = writeln!(out, "  version: 0.3");
    let _ = writeln!(out, "  subtree:");
    let _ = writeln!(out, "    - name: system");
    let _ = writeln!(out, "      local:");
    let _ = writeln!(out, "        - name: DRAM");
    let _ = writeln!(out, "          class: DRAM");
    let _ = writeln!(out, "          attributes:");
    let _ = writeln!(out, "            word-bits: {}", arch.word_bits);
    let _ = writeln!(
        out,
        "            read_bandwidth: {}",
        bw.dram_words_per_cycle
    );
    let _ = writeln!(
        out,
        "            write_bandwidth: {}",
        bw.dram_words_per_cycle
    );
    let _ = writeln!(out, "      subtree:");
    let _ = writeln!(out, "        - name: chip");
    let _ = writeln!(out, "          local:");
    let _ = writeln!(out, "            - name: SRAM");
    let _ = writeln!(out, "              class: SRAM");
    let _ = writeln!(out, "              attributes:");
    let _ = writeln!(out, "                depth: {}", arch.sram_words);
    let _ = writeln!(out, "                word-bits: {}", arch.word_bits);
    let _ = writeln!(
        out,
        "                read_bandwidth: {}",
        bw.sram_words_per_cycle
    );
    let _ = writeln!(
        out,
        "                write_bandwidth: {}",
        bw.sram_words_per_cycle
    );
    let _ = writeln!(out, "          subtree:");
    let _ = writeln!(out, "            - name: PE[0..{}]", arch.pe_count - 1);
    let _ = writeln!(out, "              local:");
    let _ = writeln!(out, "                - name: RegisterFile");
    let _ = writeln!(out, "                  class: regfile");
    let _ = writeln!(out, "                  attributes:");
    let _ = writeln!(out, "                    depth: {}", arch.regs_per_pe);
    let _ = writeln!(out, "                    word-bits: {}", arch.word_bits);
    let _ = writeln!(out, "                - name: MACC");
    let _ = writeln!(out, "                  class: intmac");
    let _ = writeln!(out, "                  attributes:");
    let _ = writeln!(out, "                    datawidth: {}", arch.word_bits);
    out
}

/// Renders the mapping document (per-level factors and permutations) in the
/// style of Fig. 3(d).
pub fn mapping_yaml(prob: &ProblemSpec, mapping: &Mapping) -> String {
    let factors = |fs: &[u64]| -> String {
        fs.iter()
            .enumerate()
            .map(|(d, f)| format!("{}={}", prob.dim_names[d], f))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let perm = |p: &[usize]| -> String {
        // Timeloop lists permutations innermost-first.
        p.iter()
            .rev()
            .map(|&d| prob.dim_names[d].clone())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let identity: Vec<usize> = (0..prob.num_dims()).collect();
    let mut out = String::new();
    let _ = writeln!(out, "mapping:");
    let _ = writeln!(out, "  - target: DRAM");
    let _ = writeln!(out, "    type: temporal");
    let _ = writeln!(out, "    factors: {}", factors(&mapping.outer_factors));
    let _ = writeln!(out, "    permutation: {}", perm(&mapping.outer_perm));
    let _ = writeln!(out, "  - target: SRAM");
    let _ = writeln!(out, "    type: spatial");
    let _ = writeln!(out, "    factors: {}", factors(&mapping.spatial_factors));
    let _ = writeln!(out, "    permutation: {}", perm(&identity));
    let _ = writeln!(out, "  - target: SRAM");
    let _ = writeln!(out, "    type: temporal");
    let _ = writeln!(
        out,
        "    factors: {}",
        factors(&mapping.pe_temporal_factors)
    );
    let _ = writeln!(out, "    permutation: {}", perm(&mapping.pe_temporal_perm));
    let _ = writeln!(out, "  - target: RegisterFile");
    let _ = writeln!(out, "    type: temporal");
    let _ = writeln!(out, "    factors: {}", factors(&mapping.register_factors));
    let _ = writeln!(out, "    permutation: {}", perm(&identity));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::matmul;

    #[test]
    fn problem_yaml_contains_dataspaces_and_instance() {
        let y = problem_yaml(&matmul(64, 32, 16));
        assert!(y.contains("dimensions: [I, J, K]"));
        assert!(y.contains("- name: A"));
        assert!(y.contains("read-write: true"));
        assert!(y.contains("I: 64"));
        assert!(y.contains("K: 16"));
    }

    #[test]
    fn arch_yaml_mirrors_fig3a_structure() {
        let y = arch_yaml(&ArchSpec::eyeriss_like());
        assert!(y.contains("class: DRAM"));
        assert!(y.contains("depth: 65536"));
        assert!(y.contains("PE[0..167]"));
        assert!(y.contains("class: intmac"));
    }

    #[test]
    fn mapping_yaml_lists_all_levels() {
        let prob = matmul(8, 8, 8);
        let m = Mapping::untiled(&prob);
        let y = mapping_yaml(&prob, &m);
        assert_eq!(y.matches("- target:").count(), 4);
        assert!(y.contains("type: spatial"));
        assert!(y.contains("factors: I=8 J=8 K=8"));
    }

    #[test]
    fn permutation_order_is_innermost_first() {
        let prob = matmul(8, 8, 8);
        let mut m = Mapping::untiled(&prob);
        m.outer_perm = vec![2, 0, 1]; // outer->inner K, I, J
        let y = mapping_yaml(&prob, &m);
        assert!(y.contains("permutation: J I K"), "{y}");
    }
}
