//! Tiled pseudocode generation in the style of the paper's Fig. 1(d).
//!
//! For a concrete mapping, emits the Python-convention loop nest the model
//! evaluates: outer temporal loops over SRAM tiles with hoisted buffer
//! copies, `forall` spatial loops over the PE grid, per-PE temporal loops
//! with hoisted register copies, and the innermost compute loops. Copy
//! statements appear exactly where the access-counting semantics place them
//! (just above each tensor's innermost present loop), so the pseudocode is a
//! human-readable witness of the hoisting the model credits.

use crate::mapping::{MapLevel, Mapping};
use crate::problem::ProblemSpec;
use std::fmt::Write as _;

/// Renders the tiled loop nest of `mapping` as pseudocode.
///
/// # Examples
///
/// ```
/// use timeloop_lite::{codegen, problem, Mapping};
/// let prob = problem::matmul(8, 8, 8);
/// let code = codegen::pseudocode(&prob, &Mapping::untiled(&prob));
/// assert!(code.contains("for i0_I in range(8)"));
/// assert!(code.contains("+="));
/// ```
pub fn pseudocode(prob: &ProblemSpec, mapping: &Mapping) -> String {
    let mut out = String::new();
    let mut depth = 0usize;

    // Outer temporal level: loops over SRAM tiles, SRAM-buffer copies.
    emit_temporal_level(
        &mut out,
        &mut depth,
        prob,
        mapping.effective_perm(MapLevel::Outer),
        &mapping.outer_factors,
        "t",
        "sbuf",
    );

    // Spatial level: forall loops over the PE grid.
    for d in 0..prob.num_dims() {
        let f = mapping.spatial_factors[d];
        if f > 1 {
            let _ = writeln!(
                out,
                "{}forall p_{} in range({f}):  # spatial",
                "  ".repeat(depth),
                prob.dim_names[d]
            );
            depth += 1;
        }
    }

    // PE-temporal level: loops over register tiles, register copies.
    emit_temporal_level(
        &mut out,
        &mut depth,
        prob,
        mapping.effective_perm(MapLevel::PeTemporal),
        &mapping.pe_temporal_factors,
        "q",
        "reg",
    );

    // Innermost register loops and the compute statement.
    for d in 0..prob.num_dims() {
        let f = mapping.register_factors[d];
        if f > 1 {
            let _ = writeln!(
                out,
                "{}for i0_{} in range({f}):",
                "  ".repeat(depth),
                prob.dim_names[d]
            );
            depth += 1;
        }
    }
    let pad = "  ".repeat(depth);
    let statement = compute_statement(prob);
    let _ = writeln!(out, "{pad}{statement}");
    out
}

/// Emits one temporal level: its loops in permutation order, with each
/// tensor's copy placed just above its innermost present loop.
fn emit_temporal_level(
    out: &mut String,
    depth: &mut usize,
    prob: &ProblemSpec,
    perm: Vec<usize>,
    factors: &[u64],
    index_prefix: &str,
    buffer_suffix: &str,
) {
    // Copy placement per tensor: index in `perm` of the innermost present
    // loop (copies for tensors with no present loop go above the level).
    let placements: Vec<(usize, Option<usize>)> = prob
        .data_spaces
        .iter()
        .enumerate()
        .map(|(t, ds)| (t, perm.iter().rposition(|&d| ds.uses(d))))
        .collect();

    // Copies hoisted above the whole level.
    for &(t, placement) in &placements {
        if placement.is_none() {
            emit_copy(out, *depth, prob, t, buffer_suffix);
        }
    }
    for (pos, &d) in perm.iter().enumerate() {
        let pad = "  ".repeat(*depth);
        let _ = writeln!(
            out,
            "{pad}for {index_prefix}_{} in range({}):",
            prob.dim_names[d], factors[d]
        );
        *depth += 1;
        // Copies placed just above the next-inner loop (i.e. here, when this
        // is the tensor's innermost present loop).
        for &(t, placement) in &placements {
            if placement == Some(pos) {
                emit_copy(out, *depth, prob, t, buffer_suffix);
            }
        }
    }
}

fn emit_copy(out: &mut String, depth: usize, prob: &ProblemSpec, tensor: usize, suffix: &str) {
    let ds = &prob.data_spaces[tensor];
    let pad = "  ".repeat(depth);
    let dims: Vec<String> = ds
        .projection
        .iter()
        .map(|expr| {
            expr.iter()
                .map(|&(d, c)| {
                    if c == 1.0 {
                        prob.dim_names[d].to_lowercase()
                    } else {
                        format!("{}*{}", c, prob.dim_names[d].to_lowercase())
                    }
                })
                .collect::<Vec<_>>()
                .join("+")
        })
        .collect();
    let _ = writeln!(
        out,
        "{pad}{}_{suffix} = copy {}[{}]  # tile slice",
        ds.name,
        ds.name,
        dims.join(", ")
    );
    if ds.read_write {
        let _ = writeln!(out, "{pad}# ... and written back after the enclosed loops");
    }
}

fn compute_statement(prob: &ProblemSpec) -> String {
    let rw: Vec<&str> = prob
        .data_spaces
        .iter()
        .filter(|d| d.read_write)
        .map(|d| d.name.as_str())
        .collect();
    let reads: Vec<&str> = prob
        .data_spaces
        .iter()
        .filter(|d| !d.read_write)
        .map(|d| d.name.as_str())
        .collect();
    format!(
        "{}_reg += {}",
        rw.first().unwrap_or(&"Out"),
        reads
            .iter()
            .map(|r| format!("{r}_reg"))
            .collect::<Vec<_>>()
            .join(" * ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{conv2d, matmul};

    fn tiled_matmul() -> (ProblemSpec, Mapping) {
        let prob = matmul(16, 16, 16);
        let mut m = Mapping::untiled(&prob);
        m.register_factors = vec![2, 2, 4];
        m.pe_temporal_factors = vec![2, 2, 2];
        m.spatial_factors = vec![2, 2, 1];
        m.outer_factors = vec![2, 2, 1];
        m.outer_perm = vec![0, 2, 1]; // I, K, J — the Fig. 1 order
        (prob, m)
    }

    #[test]
    fn structure_matches_mapping() {
        let (prob, m) = tiled_matmul();
        let code = pseudocode(&prob, &m);
        // Outer loops (factor > 1 only): I and J exist, K (factor 1) does not.
        assert!(code.contains("for t_I in range(2):"));
        assert!(code.contains("for t_J in range(2):"));
        assert!(!code.contains("for t_K"));
        // Spatial foralls.
        assert_eq!(code.matches("forall").count(), 2);
        // Compute statement.
        assert!(code.contains("C_reg += A_reg * B_reg"));
    }

    #[test]
    fn hoisting_is_visible_in_copy_placement() {
        let (prob, mut m) = tiled_matmul();
        // Outer level perm (I, K, J), all with factor 2.
        m.outer_factors = vec![2, 2, 2];
        m.outer_perm = vec![0, 2, 1];
        let code = pseudocode(&prob, &m);
        // A[i][k] does not use J (innermost): its copy hoists above t_J.
        let a_pos = code.find("A_sbuf = copy").unwrap();
        let j_pos = code.find("for t_J").unwrap();
        let k_pos = code.find("for t_K").unwrap();
        assert!(
            a_pos > k_pos && a_pos < j_pos,
            "A copy sits between K and J loops"
        );
        // B[k][j] uses J: its copy is inside the J loop.
        let b_pos = code.find("B_sbuf = copy").unwrap();
        assert!(b_pos > j_pos);
    }

    #[test]
    fn fully_hoisted_copies_precede_the_level() {
        let prob = matmul(8, 8, 8);
        let mut m = Mapping::untiled(&prob);
        // Only a K outer loop: C[i][j] doesn't use K, so its copy hoists
        // above the whole level.
        m.register_factors = vec![8, 8, 4];
        m.outer_factors = vec![1, 1, 2];
        let code = pseudocode(&prob, &m);
        let c_pos = code.find("C_sbuf = copy").unwrap();
        let k_pos = code.find("for t_K").unwrap();
        assert!(c_pos < k_pos, "C copy precedes the K loop:\n{code}");
    }

    #[test]
    fn conv_projection_renders_strides() {
        let prob = conv2d("t", 1, 4, 4, 6, 6, 3, 3, 2);
        let mut m = Mapping::untiled(&prob);
        m.register_factors = vec![1, 2, 4, 3, 3, 6, 6];
        m.outer_factors = vec![1, 2, 1, 1, 1, 1, 1];
        let code = pseudocode(&prob, &m);
        assert!(
            code.contains("In_sbuf = copy In[n, c, 2*h+r, 2*w+s]"),
            "{code}"
        );
        assert!(code.contains("# ... and written back"));
    }

    #[test]
    fn read_write_tensors_mention_writeback() {
        let (prob, m) = tiled_matmul();
        let code = pseudocode(&prob, &m);
        assert!(code.contains("written back"));
    }
}
