//! Problem specifications: iteration dimensions and data spaces.
//!
//! Mirrors Timeloop's problem document (Fig. 3(b) of the paper): a set of
//! dimensions, a set of data spaces with linear projections, and an instance
//! binding each dimension to an extent.

use serde::{Deserialize, Serialize};

/// One data space (tensor) and its projection from the iteration space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSpace {
    /// Tensor name.
    pub name: String,
    /// Whether the tensor is read *and* written (partial sums).
    pub read_write: bool,
    /// Per data dimension: linear combination `sum (dim_index, coefficient)`
    /// of iteration dimensions.
    pub projection: Vec<Vec<(usize, f64)>>,
}

impl DataSpace {
    /// Whether iteration dimension `dim` appears in the projection.
    pub fn uses(&self, dim: usize) -> bool {
        self.projection
            .iter()
            .any(|e| e.iter().any(|&(d, c)| d == dim && c != 0.0))
    }

    /// Words spanned by a tile whose extent along iteration dim `d` is
    /// `tile[d]`: the product over data dims of
    /// `sum_d coef * (tile[d] - 1) + 1` (exact, halos included).
    ///
    /// # Panics
    ///
    /// Panics if `tile` is shorter than the dimensions referenced.
    pub fn footprint(&self, tile: &[u64]) -> u64 {
        self.projection
            .iter()
            .map(|expr| {
                let extent: f64 = expr
                    .iter()
                    .map(|&(d, c)| c * (tile[d] as f64 - 1.0))
                    .sum::<f64>()
                    + 1.0;
                extent.round().max(1.0) as u64
            })
            .product()
    }

    /// Number of distinct words in the whole data space for `extents`.
    pub fn total_words(&self, extents: &[u64]) -> u64 {
        self.footprint(extents)
    }
}

/// A problem: dimensions, extents, and data spaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// Workload name (used in emitted specs).
    pub name: String,
    /// Dimension names (`"K"`, `"C"`, ...), indexed by dimension id.
    pub dim_names: Vec<String>,
    /// Dimension extents, same indexing.
    pub extents: Vec<u64>,
    /// Data spaces.
    pub data_spaces: Vec<DataSpace>,
}

impl ProblemSpec {
    /// Number of iteration dimensions.
    pub fn num_dims(&self) -> usize {
        self.dim_names.len()
    }

    /// Total MAC operations (product of extents).
    pub fn macs(&self) -> u64 {
        self.extents.iter().product()
    }

    /// Index of the dimension named `name`, if any.
    pub fn dim(&self, name: &str) -> Option<usize> {
        self.dim_names.iter().position(|n| n == name)
    }
}

/// Matrix multiplication `C[i][j] += A[i][k] * B[k][j]` (Fig. 3(b)).
pub fn matmul(ni: u64, nj: u64, nk: u64) -> ProblemSpec {
    ProblemSpec {
        name: format!("matmul_{ni}x{nj}x{nk}"),
        dim_names: vec!["I".into(), "J".into(), "K".into()],
        extents: vec![ni, nj, nk],
        data_spaces: vec![
            DataSpace {
                name: "A".into(),
                read_write: false,
                projection: vec![vec![(0, 1.0)], vec![(2, 1.0)]],
            },
            DataSpace {
                name: "B".into(),
                read_write: false,
                projection: vec![vec![(2, 1.0)], vec![(1, 1.0)]],
            },
            DataSpace {
                name: "C".into(),
                read_write: true,
                projection: vec![vec![(0, 1.0)], vec![(1, 1.0)]],
            },
        ],
    }
}

/// A Conv2D layer over output pixels:
/// `Out[n][k][h][w] += In[n][c][x*h+r][x*w+s] * Ker[k][c][r][s]`.
///
/// Dimension order: `n, k, c, r, s, h, w` — `h`/`w` are *output* extents and
/// `stride` is the kernel stride.
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    name: &str,
    n: u64,
    k: u64,
    c: u64,
    out_h: u64,
    out_w: u64,
    kernel_h: u64,
    kernel_w: u64,
    stride: u64,
) -> ProblemSpec {
    let x = stride as f64;
    ProblemSpec {
        name: name.to_owned(),
        dim_names: ["N", "K", "C", "R", "S", "H", "W"]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        extents: vec![n, k, c, kernel_h, kernel_w, out_h, out_w],
        data_spaces: vec![
            DataSpace {
                name: "In".into(),
                read_write: false,
                projection: vec![
                    vec![(0, 1.0)],
                    vec![(2, 1.0)],
                    vec![(5, x), (3, 1.0)],
                    vec![(6, x), (4, 1.0)],
                ],
            },
            DataSpace {
                name: "Ker".into(),
                read_write: false,
                projection: vec![
                    vec![(1, 1.0)],
                    vec![(2, 1.0)],
                    vec![(3, 1.0)],
                    vec![(4, 1.0)],
                ],
            },
            DataSpace {
                name: "Out".into(),
                read_write: true,
                projection: vec![
                    vec![(0, 1.0)],
                    vec![(1, 1.0)],
                    vec![(5, 1.0)],
                    vec![(6, 1.0)],
                ],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_spec_shape() {
        let p = matmul(4, 5, 6);
        assert_eq!(p.macs(), 120);
        assert_eq!(p.num_dims(), 3);
        assert_eq!(p.dim("K"), Some(2));
        assert_eq!(p.dim("Z"), None);
        let a = &p.data_spaces[0];
        assert!(a.uses(0) && a.uses(2) && !a.uses(1));
    }

    #[test]
    fn footprint_counts_halos() {
        let p = conv2d("t", 1, 8, 4, 10, 10, 3, 3, 1);
        let input = &p.data_spaces[0];
        // Tile: h=2, w=2, c=1, everything else 1, kernel fully resident.
        let tile = [1, 1, 1, 3, 3, 2, 2];
        // extent_h = 1*(2-1) + 1*(3-1) + 1 = 4, same for w; c extent 1.
        assert_eq!(input.footprint(&tile), 4 * 4);
        // Stride-2 halo: extent = 2*(2-1) + (3-1) + 1 = 5.
        let p2 = conv2d("t", 1, 8, 4, 10, 10, 3, 3, 2);
        assert_eq!(p2.data_spaces[0].footprint(&tile), 5 * 5);
    }

    #[test]
    fn total_words_at_full_extents() {
        let p = matmul(4, 5, 6);
        assert_eq!(p.data_spaces[0].total_words(&p.extents), 24); // A: 4x6
        assert_eq!(p.data_spaces[1].total_words(&p.extents), 30); // B: 6x5
        assert_eq!(p.data_spaces[2].total_words(&p.extents), 20); // C: 4x5
    }
}
