//! An explicit loop-nest simulator used to validate the analytical model.
//!
//! Where [`crate::model`] derives access counts with closed-form products,
//! this module *executes* the tiled loop nest: it enumerates every iteration
//! of a temporal level in loop order with an odometer, places each tensor's
//! copy operation at its hoisted position (just above the innermost loop
//! whose iterator appears in the tensor), and counts one fill each time the
//! enclosing loop indices change. Footprints are measured from the actual
//! integer strip extents, halos included.
//!
//! The counts must agree exactly with the analytical model — see this
//! module's tests and `tests/model_vs_sim.rs`.

use crate::mapping::{MapLevel, Mapping};
use crate::problem::{DataSpace, ProblemSpec};

/// Simulated fill counts for one tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTensor {
    /// Tensor name.
    pub name: String,
    /// Words one PE pulls into its registers per SRAM tile (enumerated).
    pub reg_fill_words_per_pe_per_tile: u64,
    /// Words filled into SRAM from DRAM over the whole execution
    /// (enumerated).
    pub sram_fill_words_total: u64,
}

/// Simulated fill counts for all tensors of a problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimCounts {
    /// Per-tensor counts, in problem order.
    pub per_tensor: Vec<SimTensor>,
}

/// Enumerates the copies of `ds` performed by one temporal level.
///
/// `base_tile` is the per-dimension tile extent fed from the level below;
/// `factors` are the level's trip counts; `perm` its existing loops in order
/// (outermost first). Returns total words moved per execution of the
/// enclosing levels.
fn enumerate_fill_words(ds: &DataSpace, base_tile: &[u64], factors: &[u64], perm: &[usize]) -> u64 {
    // Copy placement: just above the innermost loop whose iterator the
    // tensor uses (code-generation rule of Fig. 1(d)); the copied strip then
    // spans that loop's whole range.
    let innermost_present = perm.iter().rposition(|&d| ds.uses(d));
    let Some(pos) = innermost_present else {
        // Hoisted above the entire level: a single copy of the base tile.
        return ds.footprint(base_tile);
    };
    let dstar = perm[pos];
    let mut strip = base_tile.to_vec();
    strip[dstar] *= factors[dstar];
    let strip_words = ds.footprint(&strip);

    // Walk the whole level with an odometer (outermost digit first) and fire
    // a copy whenever any index outside the placement changes — including
    // the very first iteration.
    let sizes: Vec<u64> = perm.iter().map(|&d| factors[d]).collect();
    let mut idx = vec![0u64; perm.len()];
    let mut fills = 0u64;
    let mut last_key: Option<Vec<u64>> = None;
    loop {
        let key: Vec<u64> = idx[..pos].to_vec();
        if last_key.as_ref() != Some(&key) {
            fills += 1;
            last_key = Some(key);
        }
        // Advance the odometer (innermost digit fastest).
        let mut carry = true;
        for i in (0..idx.len()).rev() {
            if !carry {
                break;
            }
            idx[i] += 1;
            if idx[i] < sizes[i] {
                carry = false;
            } else {
                idx[i] = 0;
            }
        }
        if carry {
            break;
        }
    }
    fills * strip_words
}

/// Simulates both temporal levels of `mapping` for every tensor.
///
/// Only the temporal levels need enumeration: the spatial level is a lockstep
/// broadcast (its effect is a closed multiplicative factor in both the model
/// and reality).
///
/// # Panics
///
/// Panics if the mapping is structurally invalid for `prob`.
pub fn simulate_fills(prob: &ProblemSpec, mapping: &Mapping) -> SimCounts {
    mapping.validate(prob).expect("mapping must be valid");
    let t0 = mapping.tile_through(MapLevel::Register);
    let t2 = mapping.tile_through(MapLevel::Spatial);
    let per_tensor = prob
        .data_spaces
        .iter()
        .map(|ds| SimTensor {
            name: ds.name.clone(),
            reg_fill_words_per_pe_per_tile: enumerate_fill_words(
                ds,
                &t0,
                &mapping.pe_temporal_factors,
                &mapping.effective_perm(MapLevel::PeTemporal),
            ),
            sram_fill_words_total: enumerate_fill_words(
                ds,
                &t2,
                &mapping.outer_factors,
                &mapping.effective_perm(MapLevel::Outer),
            ),
        })
        .collect();
    SimCounts { per_tensor }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tensor_traffic;
    use crate::problem::{conv2d, matmul};
    use rand::prelude::*;

    fn random_mapping(prob: &ProblemSpec, rng: &mut StdRng) -> Mapping {
        fn random_split(mut n: u64, rng: &mut StdRng) -> [u64; 4] {
            let mut out = [1u64; 4];
            // Repeatedly peel a random divisor into a random slot.
            for _ in 0..8 {
                if n == 1 {
                    break;
                }
                let divs: Vec<u64> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
                let d = *divs.choose(rng).unwrap();
                let slot = rng.gen_range(0..4);
                out[slot] *= d;
                n /= d;
            }
            out[3] *= n;
            out
        }
        let ndims = prob.num_dims();
        let mut m = Mapping::untiled(prob);
        for d in 0..ndims {
            let [a, b, c, t] = random_split(prob.extents[d], rng);
            m.register_factors[d] = a;
            m.pe_temporal_factors[d] = b;
            m.spatial_factors[d] = c;
            m.outer_factors[d] = t;
        }
        let mut perm: Vec<usize> = (0..ndims).collect();
        perm.shuffle(rng);
        m.pe_temporal_perm = perm.clone();
        perm.shuffle(rng);
        m.outer_perm = perm;
        m
    }

    #[test]
    fn sim_matches_model_on_random_matmuls() {
        let mut rng = StdRng::seed_from_u64(31);
        let prob = matmul(8, 12, 10);
        for trial in 0..60 {
            let m = random_mapping(&prob, &mut rng);
            let sim = simulate_fills(&prob, &m);
            let model = tensor_traffic(&prob, &m);
            for (s, a) in sim.per_tensor.iter().zip(&model) {
                assert_eq!(
                    s.reg_fill_words_per_pe_per_tile, a.reg_fill_words_per_pe_per_tile,
                    "trial {trial} tensor {} reg fills: {m:?}",
                    s.name
                );
                assert_eq!(
                    s.sram_fill_words_total, a.sram_fill_words_total,
                    "trial {trial} tensor {} sram fills: {m:?}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn sim_matches_model_on_random_convs() {
        let mut rng = StdRng::seed_from_u64(77);
        let prob = conv2d("t", 2, 4, 6, 6, 6, 3, 3, 1);
        for trial in 0..40 {
            let m = random_mapping(&prob, &mut rng);
            let sim = simulate_fills(&prob, &m);
            let model = tensor_traffic(&prob, &m);
            for (s, a) in sim.per_tensor.iter().zip(&model) {
                assert_eq!(
                    s.reg_fill_words_per_pe_per_tile, a.reg_fill_words_per_pe_per_tile,
                    "trial {trial} tensor {} (conv, reg)",
                    s.name
                );
                assert_eq!(
                    s.sram_fill_words_total, a.sram_fill_words_total,
                    "trial {trial} tensor {} (conv, dram)",
                    s.name
                );
            }
        }
    }

    #[test]
    fn every_input_word_is_read_at_least_once() {
        let mut rng = StdRng::seed_from_u64(5);
        let prob = matmul(8, 8, 8);
        for _ in 0..30 {
            let m = random_mapping(&prob, &mut rng);
            let sim = simulate_fills(&prob, &m);
            for (ds, s) in prob.data_spaces.iter().zip(&sim.per_tensor) {
                assert!(
                    s.sram_fill_words_total >= ds.total_words(&prob.extents),
                    "{} moved fewer words than it contains",
                    s.name
                );
            }
        }
    }

    #[test]
    fn whole_tensor_in_sram_reads_dram_once() {
        let prob = matmul(8, 8, 8);
        // Everything inside the SRAM tile; no outer loops.
        let mut m = Mapping::untiled(&prob);
        m.register_factors = vec![2, 2, 8];
        m.pe_temporal_factors = vec![4, 4, 1];
        let sim = simulate_fills(&prob, &m);
        for (ds, s) in prob.data_spaces.iter().zip(&sim.per_tensor) {
            assert_eq!(s.sram_fill_words_total, ds.total_words(&prob.extents));
        }
    }
}
