//! An analytical accelerator model and mapping-space explorer in the mold of
//! Timeloop.
//!
//! The paper uses Timeloop in two roles, both reproduced here:
//!
//! * **Model** ([`model`]): given a problem, an architecture, and a mapping,
//!   deterministically count per-level memory accesses (with copy hoisting
//!   and spatial multicast), check buffer capacities, and report energy,
//!   cycles, and MAC IPC. The counting arithmetic is validated against an
//!   explicit loop-nest simulator ([`sim`]) that enumerates iterations one by
//!   one.
//! * **Mapper** ([`mapper`]): a multi-threaded randomized search over the
//!   mapping space (divisor factorizations x loop permutations) with
//!   timeout and victory-condition termination, mirroring Timeloop Mapper's
//!   interface. This is the baseline Thistle is compared against in
//!   Figs. 4 and 7.
//!
//! Specs mirror Timeloop's three input documents (Fig. 3 of the paper):
//! problem ([`problem::ProblemSpec`]), architecture ([`arch::ArchSpec`]),
//! and mapping ([`mapping::Mapping`]); [`emit`] renders them in the
//! Timeloop YAML style.
//!
//! # Examples
//!
//! ```
//! use timeloop_lite::{arch::ArchSpec, mapping::Mapping, model, problem};
//!
//! // C[i][j] += A[i][k] * B[k][j], 64^3.
//! let prob = problem::matmul(64, 64, 64);
//! let arch = ArchSpec::eyeriss_like();
//! let mapping = Mapping::untiled(&prob); // everything in one register tile
//! // An untiled mapping busts the register file; the model reports it.
//! assert!(model::evaluate(&prob, &arch, &mapping).is_err());
//! ```

pub mod arch;
pub mod codegen;
pub mod emit;
pub mod gamma;
pub mod mapper;
pub mod mapping;
pub mod model;
pub mod parse;
pub mod problem;
pub mod sim;

pub use arch::ArchSpec;
pub use gamma::{GammaOptions, GammaResult, GeneticMapper};
pub use mapper::{Mapper, MapperOptions, MapperResult};
pub use mapping::Mapping;
pub use model::{evaluate, evaluate_traced, EvalError, EvalResult};
pub use problem::ProblemSpec;
