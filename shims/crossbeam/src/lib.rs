//! Offline stand-in for `crossbeam`.
//!
//! The build environment cannot reach crates.io, so this shim implements the
//! two pieces of crossbeam the workspace relies on, on top of `std`:
//!
//! * [`scope`] — structured scoped threads, backed by [`std::thread::scope`]
//!   with crossbeam's closure-takes-a-scope-argument calling convention;
//! * [`channel`] — multi-producer **multi-consumer** channels (std's `mpsc`
//!   receivers cannot be cloned), built from a mutexed ring + condvars, with
//!   optional capacity bounds and `recv_timeout`.

use std::any::Any;

/// Wrapper over [`std::thread::Scope`] mirroring crossbeam's `Scope` API
/// surface used in this workspace (`spawn` with a by-ref scope argument).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a placeholder argument
    /// to match crossbeam's `|scope| ...` convention (all call sites in this
    /// workspace ignore it).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(&()))
    }
}

/// Creates a scope for spawning threads that may borrow from the caller.
///
/// All spawned threads are joined before `scope` returns. Unlike crossbeam,
/// a panicking child re-panics in the parent (std semantics) rather than
/// surfacing through the returned `Result`; the `Result` wrapper is kept so
/// call sites written against crossbeam's signature compile unchanged.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        readable: Condvar,
        /// Signalled when space frees up or all receivers disconnect.
        writable: Condvar,
        capacity: Option<usize>,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned when all receivers have been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Bounded-wait receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "channel receive timed out"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// Creates a channel with unbounded buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel that holds at most `cap` in-flight items; `send`
    /// blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the item is enqueued (or every receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self
                    .inner
                    .capacity
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    self.inner.readable.notify_one();
                    return Ok(());
                }
                state = self.inner.writable.wait(state).expect("channel poisoned");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.inner.writable.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.readable.wait(state).expect("channel poisoned");
            }
        }

        /// Returns immediately with the queue head, if any.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            match state.queue.pop_front() {
                Some(v) => {
                    self.inner.writable.notify_one();
                    Ok(v)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks up to `timeout` for an item.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.inner.writable.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .readable
                    .wait_timeout(state, deadline - now)
                    .expect("channel poisoned");
                state = guard;
            }
        }

        /// A blocking iterator that drains the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                self.inner.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                self.inner.writable.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_send_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn mpmc_workers_drain_everything() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: i64 = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || rx.iter().sum::<i64>())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, (0..100).sum::<i64>());
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn bounded_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let handle = std::thread::spawn(move || {
                tx.send(2).unwrap();
            });
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            handle.join().unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::Mutex::new(0u64);
        super::scope(|scope| {
            for chunk in data.chunks(2) {
                let total = &total;
                scope.spawn(move |_| {
                    *total.lock().unwrap() += chunk.iter().sum::<u64>();
                });
            }
        })
        .expect("scope");
        assert_eq!(*total.lock().unwrap(), 10);
    }
}
