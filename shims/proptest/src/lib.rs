//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! subset of proptest the workspace's property tests use: range and
//! collection strategies, `prop_map`, tuple composition, the `proptest!`
//! test-definition macro, and `prop_assert!`/`prop_assert_eq!`. Cases are
//! sampled from a deterministic PRNG seeded from the test name, so runs are
//! reproducible; there is no shrinking — a failing case reports its case
//! index and message only.

use rand::prelude::*;
use std::ops::{Range, RangeInclusive};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// A failed property check (from `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Derived strategy applying `f` to every drawn value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident | $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 | 0);
    (S0 | 0, S1 | 1);
    (S0 | 0, S1 | 1, S2 | 2);
    (S0 | 0, S1 | 1, S2 | 2, S3 | 3);
    (S0 | 0, S1 | 1, S2 | 2, S3 | 3, S4 | 4);
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng as _;
    use std::ops::Range;

    /// Element-count specifications accepted by [`vec`].
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of `element` with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test path.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, y in 0.0f64..1.0) {
///         prop_assert!(x as f64 + y < 101.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::StdRngForTests as $crate::SeedableRngForTests>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            $(let $arg = $strat;)*
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$arg, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless both sides differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (both: {:?})",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

// Re-exported under stable names so the macro body does not depend on the
// caller importing the rand shim.
#[doc(hidden)]
pub use rand::rngs::StdRng as StdRngForTests;
#[doc(hidden)]
pub use rand::rngs::StdRng;
#[doc(hidden)]
pub use rand::SeedableRng as SeedableRngForTests;

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_sample_in_bounds(x in 1u64..50, y in -2i8..=2, f in 0.25f64..0.75) {
            prop_assert!((1..50).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn collections_and_maps_compose(
            v in crate::collection::vec(0u32..10, 1..6),
            w in crate::collection::vec((0u32..4, 1.0f64..2.0), 3usize),
            d in (0u32..5).prop_map(|x| x * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert_eq!(w.len(), 3);
            prop_assert!(d % 2 == 0);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_index() {
        proptest! {
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
