//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this shim keeps the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compiling:
//! the traits are empty markers and the derives (from the sibling
//! `serde_derive` shim) emit empty impls. Actual wire formats in this
//! workspace are hand-rolled (see `thistle-serve::json`), which also keeps
//! the repo's no-format-crate rule.

/// Marker trait; real serialization is hand-rolled per wire format.
pub trait Serialize {}

/// Marker trait; real deserialization is hand-rolled per wire format.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
