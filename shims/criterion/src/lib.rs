//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this shim keeps the
//! workspace's benches compiling and runnable: it measures wall-clock time
//! per iteration over a configurable number of samples and prints a short
//! median/min/max report. No statistical analysis, no HTML reports.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a benchmarked value away.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration times, one per sample.
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording one sample per harness-chosen batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for batches of >= 5 ms so timer
        // resolution does not dominate fast routines.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.results.push(start.elapsed() / batch);
        }
    }

    fn report(&self, label: &str) {
        if self.results.is_empty() {
            return;
        }
        let mut sorted = self.results.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        println!(
            "bench {label:<48} median {median:>12.3?}  (min {:?}, max {:?}, {} samples)",
            sorted[0],
            sorted[sorted.len() - 1],
            sorted.len()
        );
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
