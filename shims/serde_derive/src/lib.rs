//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal derive implementation: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` expand to empty marker-trait impls of the shim
//! traits in the sibling `serde` shim crate. Wire formats are hand-rolled
//! where needed (see `thistle-serve`'s JSON module), so the derives only
//! have to keep the annotated sources compiling.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name of the annotated `struct`/`enum`, skipping
/// attributes, doc comments, and visibility qualifiers. Returns `None` for
/// shapes the shim does not handle (e.g. generic types), in which case the
/// derive expands to nothing.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // `#[...]` attribute: skip the bracket group that follows.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let id = id.to_string();
                if id == "struct" || id == "enum" || id == "union" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(n)) => n.to_string(),
                        _ => return None,
                    };
                    // Generic types would need propagated bounds; bail out.
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name);
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            _ => {}
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
