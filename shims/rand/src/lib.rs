//! Offline stand-in for `rand` 0.8.
//!
//! The build environment cannot reach crates.io, so this shim implements the
//! slice of the `rand` API the workspace uses — `StdRng::seed_from_u64`,
//! `gen_range` over integer/float ranges, `gen_bool`, and slice
//! `shuffle`/`choose` — on a xoshiro256++ generator seeded via SplitMix64.
//! Streams differ from upstream `rand`, but every consumer in this
//! workspace only needs *deterministic* randomness, not a specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor used in this workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps a `u64` to `[0, 1)` with 53-bit precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a range. Mirrors `rand`'s
/// structure so that a single blanket impl covers `Range<T>` — type
/// inference then unifies unsuffixed integer literals with the use site
/// (e.g. `slice[rng.gen_range(0..4)]` infers `usize`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + unit_f64(rng.next_u64()) as $t * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(rng, start, end)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ PRNG, seeded through SplitMix64 (deterministic, fast,
    /// good statistical quality; not the upstream `StdRng` stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice sampling helpers (`shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

pub use prelude::*;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let u: usize = rng.gen_range(0..4);
            assert!(u < 4);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
